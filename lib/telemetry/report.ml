(* Aggregation of manifest corpora into per-source/per-stage rollups, and
   the compile-time regression comparison behind
   `calyx report --baseline BENCH_results.json --threshold R`. *)

type rollup = {
  r_source : string;
  r_stage : string;
  r_cat : string;
  r_count : int;
  r_seconds : float;
  r_minor_words : float;
  r_major_words : float;
  r_data : (string * float) list;  (* summed numeric results *)
}

let merge_data acc data =
  List.fold_left
    (fun acc (k, v) ->
      match List.assoc_opt k acc with
      | Some prev -> (k, prev +. v) :: List.remove_assoc k acc
      | None -> acc @ [ (k, v) ])
    acc data

let aggregate events =
  (* First-seen order for both sources and stages keeps the report in
     pipeline order without imposing an alphabetical shuffle. *)
  let order : (string * string) list ref = ref [] in
  let table : (string * string, rollup) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Manifest.event) ->
      let key = (e.Manifest.mf_source, e.Manifest.mf_stage) in
      match Hashtbl.find_opt table key with
      | None ->
          order := key :: !order;
          Hashtbl.replace table key
            {
              r_source = e.Manifest.mf_source;
              r_stage = e.Manifest.mf_stage;
              r_cat = e.Manifest.mf_cat;
              r_count = 1;
              r_seconds = e.Manifest.mf_seconds;
              r_minor_words = e.Manifest.mf_minor_words;
              r_major_words = e.Manifest.mf_major_words;
              r_data = e.Manifest.mf_data;
            }
      | Some r ->
          Hashtbl.replace table key
            {
              r with
              r_count = r.r_count + 1;
              r_seconds = r.r_seconds +. e.Manifest.mf_seconds;
              r_minor_words = r.r_minor_words +. e.Manifest.mf_minor_words;
              r_major_words = r.r_major_words +. e.Manifest.mf_major_words;
              r_data = merge_data r.r_data e.Manifest.mf_data;
            })
    events;
  List.rev_map (fun key -> Hashtbl.find table key) !order

let totals_by_source rollups =
  let order = ref [] in
  let table = Hashtbl.create 16 in
  List.iter
    (fun r ->
      (* Pass spans nest inside the compile stage span; summing only the
         "stage" rows keeps per-source totals from double-counting. *)
      if r.r_cat <> "pass" then begin
        if not (Hashtbl.mem table r.r_source) then order := r.r_source :: !order;
        let s, m =
          Option.value (Hashtbl.find_opt table r.r_source) ~default:(0., 0.)
        in
        Hashtbl.replace table r.r_source
          (s +. r.r_seconds, m +. r.r_minor_words)
      end)
    rollups;
  List.rev_map (fun src -> (src, Hashtbl.find table src)) !order

let fmt_words w =
  if Float.abs w >= 1e6 then Printf.sprintf "%.1fMw" (w /. 1e6)
  else if Float.abs w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let render rollups =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-20s %-22s %5s %10s %10s %10s  %s\n" "source" "stage" "n"
       "wall_ms" "minor" "major" "metrics");
  List.iter
    (fun r ->
      let metrics =
        String.concat " "
          (List.map
             (fun (k, v) ->
               if Float.is_integer v then Printf.sprintf "%s=%.0f" k v
               else Printf.sprintf "%s=%.2f" k v)
             r.r_data)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-20s %-22s %5d %10.3f %10s %10s  %s\n" r.r_source
           (if r.r_cat = "pass" then "  " ^ r.r_stage else r.r_stage)
           r.r_count (r.r_seconds *. 1000.)
           (fmt_words r.r_minor_words)
           (fmt_words r.r_major_words)
           metrics))
    rollups;
  (match totals_by_source rollups with
  | [] | [ _ ] -> ()
  | per_source ->
      Buffer.add_string buf "\nper-source totals (stage rows only):\n";
      List.iter
        (fun (src, (s, m)) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-20s %10.3f ms %10s minor\n" src (s *. 1000.)
               (fmt_words m)))
        per_source);
  Buffer.contents buf

let rollup_json r =
  Json.obj
    [
      ("source", Json.str r.r_source);
      ("stage", Json.str r.r_stage);
      ("cat", Json.str r.r_cat);
      ("count", Json.int r.r_count);
      ("seconds", Json.float r.r_seconds);
      ("gc_minor_words", Json.float r.r_minor_words);
      ("gc_major_words", Json.float r.r_major_words);
      ( "data",
        Json.obj (List.map (fun (k, v) -> (k, Json.float v)) r.r_data) );
    ]

let to_json rollups =
  Json.obj
    [
      ("rollups", Json.arr (List.map rollup_json rollups));
      ( "totals",
        Json.obj
          (List.map
             (fun (src, (s, m)) ->
               ( src,
                 Json.obj
                   [
                     ("seconds", Json.float s);
                     ("gc_minor_words", Json.float m);
                   ] ))
             (totals_by_source rollups)) );
    ]

(* ------------------------------------------------------------------ *)
(* Compile-time regression: the bench perf experiment vs a baseline     *)
(* ------------------------------------------------------------------ *)

type perf_delta = {
  p_name : string;
  p_base_ns : float;
  p_cur_ns : float;
  p_ratio : float;  (* cur / base *)
  p_normalized : float;  (* ratio / machine factor *)
  p_regressed : bool;
}

let geomean = function
  | [] -> nan
  | l ->
      exp
        (List.fold_left (fun a x -> a +. log x) 0. l
        /. float_of_int (List.length l))

let perf_rows v =
  match Option.bind (Json.member "perf" v) (Json.member "rows") with
  | Some (Json.Array rows) ->
      List.filter_map
        (fun row ->
          match
            ( Option.bind (Json.member "name" row) Json.to_string,
              Option.bind (Json.member "ns_per_run" row) Json.to_float )
          with
          | Some name, Some ns when ns > 0. -> Some (name, ns)
          | _ -> None)
        rows
  | _ -> []

(* Raw ns_per_run is machine-dependent, so comparing a laptop baseline on
   a CI runner with an absolute threshold would always fire. The machine
   factor — the geomean of all cur/base ratios — captures the overall
   speed difference; a row regresses only when its own ratio exceeds the
   factor by more than [threshold] (a *relative* slowdown: this operation
   got slower than the toolchain as a whole did). *)
let compare_perf ~threshold ~baseline ~current =
  let base = perf_rows baseline and cur = perf_rows current in
  let paired =
    List.filter_map
      (fun (name, c) ->
        Option.map (fun b -> (name, b, c)) (List.assoc_opt name base))
      cur
  in
  let factor = geomean (List.map (fun (_, b, c) -> c /. b) paired) in
  let factor = if Float.is_nan factor then 1. else factor in
  let deltas =
    List.map
      (fun (name, b, c) ->
        let ratio = c /. b in
        let normalized = ratio /. factor in
        {
          p_name = name;
          p_base_ns = b;
          p_cur_ns = c;
          p_ratio = ratio;
          p_normalized = normalized;
          p_regressed = normalized > 1. +. threshold;
        })
      paired
  in
  (deltas, factor)

let render_perf ~threshold (deltas, factor) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "compile-time regression check (machine factor %.3fx, threshold \
        +%.0f%% relative)\n"
       factor (threshold *. 100.));
  Buffer.add_string buf
    (Printf.sprintf "%-46s %14s %14s %9s %9s\n" "operation" "baseline_ns"
       "current_ns" "ratio" "relative");
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "%-46s %14.1f %14.1f %8.2fx %8.2fx%s\n" d.p_name
           d.p_base_ns d.p_cur_ns d.p_ratio d.p_normalized
           (if d.p_regressed then "  REGRESSION" else "")))
    deltas;
  let n = List.length (List.filter (fun d -> d.p_regressed) deltas) in
  Buffer.add_string buf
    (Printf.sprintf "%d of %d operations regressed\n" n (List.length deltas));
  Buffer.contents buf

let regressions deltas = List.filter (fun d -> d.p_regressed) deltas
