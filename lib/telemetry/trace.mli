(** Hierarchical pipeline spans with wall-time and GC attribution.

    One trace context covers a full toolchain run: parse, check/lint, each
    optimization pass, control compilation, emission, simulation (either
    engine), translation validation, and timing analysis each open a span
    via {!with_span}. A span records wall time from the shared {!Clock}
    and, per [Gc.quick_stat], the minor and major words allocated inside
    it and the major-heap size delta. Nesting is tracked with an explicit
    stack, so a pass span is a child of the compile span that ran it.

    With telemetry disabled ({!Runtime.on} [= false]) [with_span] calls
    its thunk directly — one branch of overhead. Completed spans are
    buffered only when {!set_keep} asked for them (Chrome export); they
    are always passed to the {!set_on_close} hook, which {!Manifest} uses
    to stream per-stage JSONL events. *)

type arg = F of float | S of string

type span = {
  sp_id : int;
  sp_parent : int;  (** id of the enclosing span, [-1] for roots. *)
  sp_depth : int;
  sp_name : string;
  sp_cat : string;  (** ["stage"], ["pass"], or a site-specific label. *)
  sp_start_ns : float;
  mutable sp_end_ns : float;
  mutable sp_minor_words : float;
  mutable sp_major_words : float;
  mutable sp_heap_delta_words : int;
  mutable sp_args : (string * arg) list;
  sp_seq : int;  (** Global open order. *)
  mutable sp_seq_close : int;  (** Global close order. *)
}

val with_span :
  ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a new span. The span is closed (and reported)
    even when the thunk raises; the exception is recorded as an ["error"]
    arg and re-raised. *)

val add_metric : string -> float -> unit
(** Attach a numeric result (cycle count, LUTs, ...) to the innermost open
    span. No-op when telemetry is off or no span is open. *)

val add_tag : string -> string -> unit
(** Attach a string attribute (engine name, file, ...) likewise. *)

val seconds : span -> float
val args : span -> (string * arg) list
val find_arg : span -> string -> arg option

val metrics : span -> (string * float) list
(** The numeric args only. *)

val set_keep : bool -> unit
(** Whether completed spans are buffered for {!spans}/{!to_chrome}
    (default false — steady-state span emission stays O(1) memory). *)

val spans : unit -> span list
(** Buffered completed spans in open order. *)

val set_on_close : (span -> unit) -> unit
val clear_on_close : unit -> unit

val reset : unit -> unit
(** Drop buffered and open spans and restart ids (tests, golden gen). *)

val to_chrome : ?scrub:bool -> unit -> string
(** The buffered spans as Chrome [trace_event] JSON (open the file at
    ui.perfetto.dev). [scrub] substitutes deterministic sequence numbers
    for wall-clock timestamps and drops GC/error args, producing
    byte-stable output for golden tests. *)
