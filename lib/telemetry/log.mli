(** One leveled logger for the whole toolchain, replacing ad-hoc stderr
    prints. Messages go to stderr (stdout stays machine output). The level
    starts from the [CALYX_LOG] environment variable ([quiet]/[info]/
    [debug], default info) and the CLI's [--log-level] overrides it. *)

type level = Quiet | Info | Debug

val of_string : string -> level option
val label : level -> string

val set_level : level -> unit
val current : unit -> level

val enabled : level -> bool
(** Whether a message at this level would print. *)

val info : ('a, unit, string, unit) format4 -> 'a
(** Progress and summary messages ([--log-level info]). *)

val debug : ('a, unit, string, unit) format4 -> 'a
(** Per-stage detail ([--log-level debug]). Each message is formatted to
    one string and written atomically, so messages from concurrent farm
    worker domains never interleave mid-line. *)
