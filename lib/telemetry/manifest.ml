(* Per-run JSONL manifests: one event per pipeline stage, carrying the
   identity a content-addressed cache would key on — source hash, pass
   pipeline id, engine — plus the stage's wall/GC cost and its numeric
   results (cycles, delays, resource counts).

   Events are streamed: a writer installed with [install] subscribes to
   Trace's on_close hook and appends one line per completed "stage" or
   "pass" span, stamped with the current run context ([set_run]). Sites
   that aren't span-shaped can [record] an event directly. *)

type event = {
  mf_stage : string;
  mf_cat : string;
  mf_source : string;
  mf_source_hash : string;
  mf_pipeline : string;
  mf_engine : string;
  mf_seconds : float;
  mf_minor_words : float;
  mf_major_words : float;
  mf_heap_delta_words : int;
  mf_data : (string * float) list;
}

(* ------------------------------------------------------------------ *)
(* Source hashing (FNV-1a 64)                                          *)
(* ------------------------------------------------------------------ *)

(* The cache key hash: stable across processes and platforms (unlike
   Hashtbl.hash), cheap, and good enough to address a compile cache —
   collisions would only cause a false cache hit in a future service,
   which can re-verify with the full source. *)
let hash s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

(* ------------------------------------------------------------------ *)
(* Run context                                                         *)
(* ------------------------------------------------------------------ *)

type context = {
  mutable cx_source : string;
  mutable cx_source_hash : string;
  mutable cx_pipeline : string;
  mutable cx_engine : string;
}

(* The run context is domain-local: each farm worker stamps the job it is
   currently executing, so events from concurrently running jobs are
   attributed to their own sources instead of racing on one record. *)
let context_key : context Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { cx_source = ""; cx_source_hash = ""; cx_pipeline = ""; cx_engine = "" })

let context () = Domain.DLS.get context_key

let set_run ?source ?source_hash ?pipeline ?engine () =
  let context = context () in
  Option.iter (fun s -> context.cx_source <- s) source;
  Option.iter (fun s -> context.cx_source_hash <- s) source_hash;
  Option.iter (fun s -> context.cx_pipeline <- s) pipeline;
  Option.iter (fun s -> context.cx_engine <- s) engine

let run_source () = (context ()).cx_source

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let to_json e =
  Json.obj
    ([
       ("stage", Json.str e.mf_stage);
       ("cat", Json.str e.mf_cat);
       ("source", Json.str e.mf_source);
       ("source_hash", Json.str e.mf_source_hash);
       ("pipeline", Json.str e.mf_pipeline);
       ("engine", Json.str e.mf_engine);
       ("seconds", Json.float e.mf_seconds);
       ("gc_minor_words", Json.float e.mf_minor_words);
       ("gc_major_words", Json.float e.mf_major_words);
       ("gc_heap_delta_words", Json.int e.mf_heap_delta_words);
     ]
    @
    match e.mf_data with
    | [] -> []
    | data ->
        [ ("data", Json.obj (List.map (fun (k, v) -> (k, Json.float v)) data)) ])

let of_json v =
  let str_field k = Option.bind (Json.member k v) Json.to_string in
  let num_field k = Option.bind (Json.member k v) Json.to_float in
  match str_field "stage" with
  | None -> None
  | Some stage ->
      let s k = Option.value (str_field k) ~default:"" in
      let f k = Option.value (num_field k) ~default:0. in
      let data =
        match Json.member "data" v with
        | Some (Json.Object fields) ->
            List.filter_map
              (fun (k, dv) -> Option.map (fun x -> (k, x)) (Json.to_float dv))
              fields
        | _ -> []
      in
      Some
        {
          mf_stage = stage;
          mf_cat = s "cat";
          mf_source = s "source";
          mf_source_hash = s "source_hash";
          mf_pipeline = s "pipeline";
          mf_engine = s "engine";
          mf_seconds = f "seconds";
          mf_minor_words = f "gc_minor_words";
          mf_major_words = f "gc_major_words";
          mf_heap_delta_words = int_of_float (f "gc_heap_delta_words");
          mf_data = data;
        }

let parse_line line =
  match String.trim line with
  | "" -> None
  | body -> of_json (Json.parse body)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let events = ref [] in
      (try
         while true do
           match parse_line (input_line ic) with
           | Some e -> events := e :: !events
           | None -> ()
         done
       with End_of_file -> ());
      List.rev !events)

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

type writer = {
  w_oc : out_channel;
  w_mutex : Mutex.t;
  mutable w_events : int;
}

let open_file path =
  { w_oc = open_out path; w_mutex = Mutex.create (); w_events = 0 }

(* One full line per event, written with a single [output_string] under
   the writer's mutex: N domains appending concurrently can never
   interleave partial lines, and every flushed prefix of the file is
   valid JSONL (manifests survive a crashed run). *)
let emit w e =
  let line = to_json e ^ "\n" in
  Mutex.lock w.w_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.w_mutex)
    (fun () ->
      output_string w.w_oc line;
      flush w.w_oc;
      w.w_events <- w.w_events + 1)

let events_written w = w.w_events

let close w = close_out w.w_oc

(* ------------------------------------------------------------------ *)
(* The Trace bridge                                                    *)
(* ------------------------------------------------------------------ *)

let event_of_span (sp : Trace.span) =
  let context = context () in
  let engine =
    match Trace.find_arg sp "engine" with
    | Some (Trace.S e) -> e
    | _ -> context.cx_engine
  in
  {
    mf_stage = sp.Trace.sp_name;
    mf_cat = sp.Trace.sp_cat;
    mf_source = context.cx_source;
    mf_source_hash = context.cx_source_hash;
    mf_pipeline = context.cx_pipeline;
    mf_engine = engine;
    mf_seconds = Trace.seconds sp;
    mf_minor_words = sp.Trace.sp_minor_words;
    mf_major_words = sp.Trace.sp_major_words;
    mf_heap_delta_words = sp.Trace.sp_heap_delta_words;
    mf_data = Trace.metrics sp;
  }

let record ?(cat = "event") ?(engine = "") ?(seconds = 0.) ?(data = []) w stage =
  let context = context () in
  emit w
    {
      mf_stage = stage;
      mf_cat = cat;
      mf_source = context.cx_source;
      mf_source_hash = context.cx_source_hash;
      mf_pipeline = context.cx_pipeline;
      mf_engine = (if engine = "" then context.cx_engine else engine);
      mf_seconds = seconds;
      mf_minor_words = 0.;
      mf_major_words = 0.;
      mf_heap_delta_words = 0;
      mf_data = data;
    }

let manifest_cats = [ "stage"; "pass" ]

let install w =
  Trace.set_on_close (fun sp ->
      if List.mem sp.Trace.sp_cat manifest_cats then emit w (event_of_span sp))

let uninstall () = Trace.clear_on_close ()
