(** Per-run JSONL manifests ([--telemetry FILE]): one event per toolchain
    stage, carrying the cache-key identity of the run — source hash, pass
    pipeline id, engine — and the stage's wall/GC cost plus its numeric
    results. This is the record a content-addressed compile/sim cache and
    the planned [calyx serve] queue will key on, and the input format of
    [calyx report]. *)

type event = {
  mf_stage : string;  (** ["parse"], ["compile"], a pass name, ["sim"], ... *)
  mf_cat : string;  (** ["stage"] or ["pass"] for span-derived events. *)
  mf_source : string;  (** Input label: file name, kernel, design. *)
  mf_source_hash : string;  (** {!hash} of the source text. *)
  mf_pipeline : string;  (** Pass pipeline id (see [Pipelines.id]). *)
  mf_engine : string;  (** Simulation engine, [""] when not applicable. *)
  mf_seconds : float;
  mf_minor_words : float;
  mf_major_words : float;
  mf_heap_delta_words : int;
  mf_data : (string * float) list;
      (** Stage results: cycles, delay_ps, fmax_mhz, resource counts... *)
}

val hash : string -> string
(** FNV-1a 64 of a string, as 16 hex digits — stable across processes and
    platforms, unlike [Hashtbl.hash]. *)

val set_run :
  ?source:string -> ?source_hash:string -> ?pipeline:string ->
  ?engine:string -> unit -> unit
(** Update the process-wide run context stamped onto subsequent events.
    Fields not passed keep their current value. *)

val run_source : unit -> string

(** {1 JSON round-trip} *)

val to_json : event -> string
(** One event as a single-line JSON object. *)

val of_json : Json.value -> event option
(** Inverse of {!to_json} (via the shared {!Json} parser); [None] when the
    object has no ["stage"] field. *)

val read_file : string -> event list
(** Parse a JSONL manifest; blank lines are skipped. *)

(** {1 Writing} *)

type writer

val open_file : string -> writer
val emit : writer -> event -> unit
(** Append one line and flush (manifests survive a crashed run). *)

val events_written : writer -> int
val close : writer -> unit

val record :
  ?cat:string -> ?engine:string -> ?seconds:float ->
  ?data:(string * float) list -> writer -> string -> unit
(** Emit an ad-hoc event under the current run context (for sites that are
    not span-shaped). *)

(** {1 The Trace bridge} *)

val event_of_span : Trace.span -> event

val install : writer -> unit
(** Subscribe to {!Trace.set_on_close}: every completed span of category
    ["stage"] or ["pass"] is appended to the manifest as it closes,
    stamped with the current run context. *)

val uninstall : unit -> unit
