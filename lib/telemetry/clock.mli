(** The single monotonic clock behind every wall-time measurement in the
    toolchain (pass observations, spans, the bench harness, [calyx stats]).
    Readings never decrease and are relative to process start. *)

val now_ns : unit -> float
(** Monotonic nanoseconds since process start. *)

val now_s : unit -> float
(** Monotonic seconds since process start. *)

val timed : (unit -> 'a) -> 'a * float
(** Run [f], returning its result and its duration in seconds. *)
