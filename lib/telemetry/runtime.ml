(* The single process-wide telemetry switch. Every instrumentation site in
   the toolchain is guarded by [on ()] — one ref read — so a build with
   telemetry disabled (the default) pays only that branch. *)

let enabled = ref false
let on () = !enabled
let enable () = enabled := true
let disable () = enabled := false

let with_enabled f =
  let prev = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := prev) f
