(** Minimal JSON emission helpers.

    The repository deliberately carries no JSON dependency; every machine
    output ({!Diagnostics.to_json}, the pass-statistics and profile reports
    of [calyx_obs], the benchmark results file) is assembled from these
    combinators. Values are pre-serialized fragments ([string]s containing
    valid JSON), composed bottom-up. *)

val escape : string -> string
(** Backslash-escape a string body (no surrounding quotes). *)

val str : string -> string
(** A JSON string literal, quoted and escaped. *)

val int : int -> string
val bool : bool -> string
val null : string

val float : float -> string
(** Shortest round-trippable decimal; non-finite values emit [null]
    (JSON has no representation for them). *)

val obj : (string * string) list -> string
(** An object from (key, serialized value) pairs, in the given order. *)

val arr : string list -> string
(** An array of serialized values. *)

(** {1 Parsing}

    A small recursive-descent reader, enough to consume this repository's
    own machine outputs (the bench regression mode diffs two
    [BENCH_results.json] files; the test suite validates coverage reports
    and span traces). Numbers are represented as [float] — exact for the
    integer ranges these files contain. *)

type value =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of value list
  | Object of (string * value) list

exception Parse_error of string

val parse : string -> value
(** Parse a complete JSON document; raises {!Parse_error} (with the byte
    offset) on malformed input or trailing garbage. *)

val member : string -> value -> value option
(** Field lookup on an [Object]; [None] on other values. *)

val to_float : value -> float option
val to_string : value -> string option
val to_list : value -> value list option

val keys : value -> string list
(** Field names of an [Object], in document order; [[]] otherwise. *)
