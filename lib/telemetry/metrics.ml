(* A process-wide metrics registry. Instruments are created once (usually
   at module initialization of the site that updates them) and live for
   the whole process; updates are gated on Runtime.on so the disabled
   toolchain pays one branch per site. *)

type histogram = {
  h_bounds : float array;  (* ascending upper bounds; +inf is implicit *)
  h_counts : int array;  (* length = bounds + 1; last bucket is +inf *)
  mutable h_sum : float;
  mutable h_count : int;
}

type kind =
  | Counter of float ref
  | Gauge of float ref
  | Histogram of histogram

type instrument = { i_name : string; i_help : string; i_kind : kind }

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 32
let order : string list ref = ref []  (* registration order, reversed *)

(* Registration and by-name lookup are serialized: a farm worker creating
   a late instrument must not race a concurrent lookup's Hashtbl
   traversal. Updates to an already-held instrument stay lock-free — a
   lost increment under contention is acceptable for telemetry, a torn
   Hashtbl is not. *)
let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let bad_name name msg = invalid_arg (Printf.sprintf "Metrics.%s: %s" name msg)

let register name help kind =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some i -> (
      (* Re-registration (module reloaded in tests, two sites agreeing on
         one instrument) returns the existing instrument — but only if the
         kinds match; a silent kind change would corrupt the exporter. *)
      match (i.i_kind, kind ()) with
      | Counter c, `Counter -> `Counter c
      | Gauge g, `Gauge -> `Gauge g
      | Histogram h, `Histogram _ -> `Histogram h
      | _ -> bad_name name "already registered with a different kind")
  | None ->
      let k =
        match kind () with
        | `Counter -> Counter (ref 0.)
        | `Gauge -> Gauge (ref 0.)
        | `Histogram bounds ->
            let sorted = List.sort_uniq compare bounds in
            if sorted = [] then bad_name name "histogram needs buckets";
            Histogram
              {
                h_bounds = Array.of_list sorted;
                h_counts = Array.make (List.length sorted + 1) 0;
                h_sum = 0.;
                h_count = 0;
              }
      in
      let i = { i_name = name; i_help = help; i_kind = k } in
      Hashtbl.replace registry name i;
      order := name :: !order;
      (match k with
      | Counter c -> `Counter c
      | Gauge g -> `Gauge g
      | Histogram h -> `Histogram h)

type counter = float ref
type gauge = float ref

let counter ?(help = "") name =
  match register name help (fun () -> `Counter) with
  | `Counter c -> c
  | _ -> assert false

let gauge ?(help = "") name =
  match register name help (fun () -> `Gauge) with
  | `Gauge g -> g
  | _ -> assert false

let histogram ?(help = "") ~buckets name =
  match register name help (fun () -> `Histogram buckets) with
  | `Histogram h -> h
  | _ -> assert false

let inc ?(by = 1.) c = if Runtime.on () then c := !c +. by
let set g v = if Runtime.on () then g := v

(* Bucket search is linear: the fixed bucket lists in this toolchain have
   ~10 entries and observation sites are already off the per-slot hot
   path (one observe per settle, not per node). *)
let observe h v =
  if Runtime.on () then begin
    let n = Array.length h.h_bounds in
    let i = ref 0 in
    while !i < n && v > h.h_bounds.(!i) do
      incr i
    done;
    h.h_counts.(!i) <- h.h_counts.(!i) + 1;
    h.h_sum <- h.h_sum +. v;
    h.h_count <- h.h_count + 1
  end

let peek c = !c

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ i ->
      match i.i_kind with
      | Counter c | Gauge c -> c := 0.
      | Histogram h ->
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          h.h_sum <- 0.;
          h.h_count <- 0)
    registry

let value name =
  match locked (fun () -> Hashtbl.find_opt registry name) with
  | Some { i_kind = Counter c; _ } | Some { i_kind = Gauge c; _ } -> Some !c
  | _ -> None

let histogram_counts name =
  match locked (fun () -> Hashtbl.find_opt registry name) with
  | Some { i_kind = Histogram h; _ } ->
      Some (Array.to_list h.h_counts, h.h_sum, h.h_count)
  | _ -> None

let registered () = locked (fun () -> List.rev !order)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

(* OpenMetrics renders integers without a decimal point and everything
   else in shortest round-trippable form — Json.float already implements
   exactly that policy. *)
let number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Json.float f

let le_label b =
  if b = Float.infinity then "+Inf" else number b

(* With [names] the caller's order is kept (golden exports must not
   depend on module-initialization order); otherwise registration order. *)
let selected names =
  let wanted = match names with None -> registered () | Some ns -> ns in
  locked (fun () -> List.filter_map (Hashtbl.find_opt registry) wanted)

let to_openmetrics ?names () =
  let buf = Buffer.create 512 in
  List.iter
    (fun i ->
      let ty =
        match i.i_kind with
        | Counter _ -> "counter"
        | Gauge _ -> "gauge"
        | Histogram _ -> "histogram"
      in
      if i.i_help <> "" then
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" i.i_name (String.trim i.i_help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" i.i_name ty);
      match i.i_kind with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%s %s\n" i.i_name (number !c))
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "%s %s\n" i.i_name (number !g))
      | Histogram h ->
          let cumulative = ref 0 in
          Array.iteri
            (fun bi count ->
              cumulative := !cumulative + count;
              let le =
                if bi < Array.length h.h_bounds then le_label h.h_bounds.(bi)
                else "+Inf"
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" i.i_name le
                   !cumulative))
            h.h_counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" i.i_name (number h.h_sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" i.i_name h.h_count))
    (selected names);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let to_json ?names () =
  Json.obj
    (List.map
       (fun i ->
         let body =
           match i.i_kind with
           | Counter c ->
               [ ("type", Json.str "counter"); ("value", Json.float !c) ]
           | Gauge g -> [ ("type", Json.str "gauge"); ("value", Json.float !g) ]
           | Histogram h ->
               [
                 ("type", Json.str "histogram");
                 ( "buckets",
                   Json.arr
                     (Array.to_list
                        (Array.mapi
                           (fun bi count ->
                             Json.obj
                               [
                                 ( "le",
                                   if bi < Array.length h.h_bounds then
                                     Json.float h.h_bounds.(bi)
                                   else Json.str "+Inf" );
                                 ("count", Json.int count);
                               ])
                           h.h_counts)) );
                 ("sum", Json.float h.h_sum);
                 ("count", Json.int h.h_count);
               ]
         in
         ( i.i_name,
           Json.obj (body @ if i.i_help = "" then [] else [ ("help", Json.str i.i_help) ]) ))
       (selected names))
