type level = Quiet | Info | Debug

let rank = function Quiet -> 0 | Info -> 1 | Debug -> 2
let label = function Quiet -> "quiet" | Info -> "info" | Debug -> "debug"

let of_string = function
  | "quiet" | "q" | "0" -> Some Quiet
  | "info" | "i" | "1" -> Some Info
  | "debug" | "d" | "2" -> Some Debug
  | _ -> None

(* CALYX_LOG seeds the level at startup; the CLI's --log-level overrides
   it via [set_level]. The default is info so the warnings that predate
   the logger (e.g. latency-contract mismatches) keep printing; an
   unparseable value falls back to the default rather than failing
   commands whose output is being piped. *)
let level =
  ref
    (match Sys.getenv_opt "CALYX_LOG" with
    | Some s -> Option.value (of_string (String.lowercase_ascii s)) ~default:Info
    | None -> Info)

let set_level l = level := l
let current () = !level
let enabled l = rank l <= rank !level

(* One mutex around the actual write so lines logged from farm worker
   domains never interleave mid-line on stderr. *)
let write_mutex = Mutex.create ()

let logf lvl fmt =
  if enabled lvl then
    Printf.ksprintf
      (fun line ->
        Mutex.lock write_mutex;
        output_string stderr ("calyx[" ^ label lvl ^ "] " ^ line ^ "\n");
        flush stderr;
        Mutex.unlock write_mutex)
      fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

let info fmt = logf Info fmt
let debug fmt = logf Debug fmt
