(** The process-wide telemetry switch.

    All collection — spans ({!Trace}), instrument updates ({!Metrics}),
    manifest events ({!Manifest}) — is gated on this one flag. When it is
    off (the default), every instrumented site in the toolchain reduces to
    a single [ref] read, which is what makes the "no-op sink compiled in
    by default" zero-cost claim testable (the bench [telemetry]
    experiment). *)

val on : unit -> bool
(** Whether telemetry is being collected. *)

val enable : unit -> unit
val disable : unit -> unit

val with_enabled : (unit -> 'a) -> 'a
(** Run [f] with telemetry enabled, restoring the previous state after
    (also on exceptions). *)
