(* Hierarchical spans: one trace context for a whole toolchain run.

   A span is opened and closed around each pipeline stage (parse, check,
   each pass, emit, sim, validate, timing, ...) and records wall time from
   the shared Clock plus GC deltas from Gc.quick_stat — minor and major
   words allocated and the major-heap size change. Spans nest through an
   explicit stack; completed spans are optionally buffered (for Chrome
   trace export) and always handed to the [on_close] hook, which is how
   Manifest streams one JSONL event per stage without any plumbing through
   the compiler's APIs.

   Domain safety (the compile farm runs pipelines on worker domains): span
   ids and sequence numbers are atomics, the open-span stack is
   domain-local state (each domain nests its own spans), and the completed
   buffer plus the [on_close] hook are serialized by a mutex — so spans
   traced on N worker domains merge into the one process-wide trace as
   they close, each with its parent links intact within its own domain. *)

type arg = F of float | S of string

type span = {
  sp_id : int;
  sp_parent : int;  (* -1 for roots *)
  sp_depth : int;
  sp_name : string;
  sp_cat : string;
  sp_start_ns : float;
  mutable sp_end_ns : float;
  mutable sp_minor_words : float;
  mutable sp_major_words : float;
  mutable sp_heap_delta_words : int;
  mutable sp_args : (string * arg) list;  (* reversed attachment order *)
  sp_seq : int;  (* global open order *)
  mutable sp_seq_close : int;
}

let next_id = Atomic.make 0
let next_seq = Atomic.make 0

(* Each domain nests its own spans: the open stack is domain-local, so a
   pipeline running on a farm worker cannot corrupt another worker's
   nesting. *)
let stack_key : span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

(* The shared close-side state: the Chrome-trace buffer and the on_close
   hook (the Manifest bridge). Serialized so spans closing on different
   domains merge without tearing. *)
let close_mutex = Mutex.create ()
let completed : span list ref = ref []  (* reversed close order *)
let keep = ref false
let on_close : (span -> unit) ref = ref ignore

let set_keep b = keep := b
let set_on_close f = on_close := f
let clear_on_close () = on_close := ignore

let reset () =
  Atomic.set next_id 0;
  Atomic.set next_seq 0;
  stack () := [];
  Mutex.lock close_mutex;
  completed := [];
  Mutex.unlock close_mutex

let seconds sp = (sp.sp_end_ns -. sp.sp_start_ns) /. 1e9

let spans () =
  Mutex.lock close_mutex;
  let all = !completed in
  Mutex.unlock close_mutex;
  List.sort (fun a b -> compare a.sp_seq b.sp_seq) all

let add_arg key v =
  if Runtime.on () then
    match !(stack ()) with
    | [] -> ()
    | sp :: _ -> sp.sp_args <- (key, v) :: sp.sp_args

let add_metric key f = add_arg key (F f)
let add_tag key s = add_arg key (S s)

let args sp = List.rev sp.sp_args

let find_arg sp key = List.assoc_opt key (args sp)

let metrics sp =
  List.filter_map
    (fun (k, v) -> match v with F f -> Some (k, f) | S _ -> None)
    (args sp)

let with_span ?(cat = "span") ?(args = []) name f =
  if not (Runtime.on ()) then f ()
  else begin
    let g0 = Gc.quick_stat () in
    let stack = stack () in
    let parent, depth =
      match !stack with
      | [] -> (-1, 0)
      | p :: _ -> (p.sp_id, p.sp_depth + 1)
    in
    let id = Atomic.fetch_and_add next_id 1 in
    let seq = Atomic.fetch_and_add next_seq 1 in
    let sp =
      {
        sp_id = id;
        sp_parent = parent;
        sp_depth = depth;
        sp_name = name;
        sp_cat = cat;
        sp_start_ns = Clock.now_ns ();
        sp_end_ns = 0.;
        sp_minor_words = 0.;
        sp_major_words = 0.;
        sp_heap_delta_words = 0;
        sp_args = List.rev_map (fun (k, v) -> (k, v)) args;
        sp_seq = seq;
        sp_seq_close = seq;
      }
    in
    stack := sp :: !stack;
    let finish () =
      sp.sp_end_ns <- Clock.now_ns ();
      let g1 = Gc.quick_stat () in
      sp.sp_minor_words <- g1.Gc.minor_words -. g0.Gc.minor_words;
      sp.sp_major_words <- g1.Gc.major_words -. g0.Gc.major_words;
      sp.sp_heap_delta_words <- g1.Gc.heap_words - g0.Gc.heap_words;
      sp.sp_seq_close <- Atomic.fetch_and_add next_seq 1;
      (* Pop this span — and, defensively, anything an exception left
         above it. *)
      let rec pop = function
        | s :: rest when s != sp -> pop rest
        | s :: rest when s == sp -> rest
        | l -> l
      in
      stack := pop !stack;
      (* Merge into the shared buffer and stream to the manifest under
         one lock: concurrent closes on worker domains serialize here. *)
      Mutex.lock close_mutex;
      if !keep then completed := sp :: !completed;
      let hook = !on_close in
      Mutex.unlock close_mutex;
      hook sp
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        sp.sp_args <- ("error", S (Printexc.to_string e)) :: sp.sp_args;
        finish ();
        raise e
  end

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)
(* ------------------------------------------------------------------ *)

let arg_json = function F f -> Json.float f | S s -> Json.str s

(* Complete ("X") events, one per span, on a single pid/tid (the pipeline
   is one thread of work). [scrub] replaces wall-clock timestamps with the
   deterministic open/close sequence numbers and drops the GC and error
   args — the form committed as a golden test, which pins the span
   *structure* (names, categories, nesting, deterministic metrics like
   cycle counts) without the run-to-run timing noise. *)
let to_chrome ?(scrub = false) () =
  let all = spans () in
  let events =
    List.map
      (fun sp ->
        let ts, dur =
          if scrub then
            (float_of_int sp.sp_seq, float_of_int (sp.sp_seq_close - sp.sp_seq))
          else (sp.sp_start_ns /. 1e3, (sp.sp_end_ns -. sp.sp_start_ns) /. 1e3)
        in
        let args =
          if scrub then
            List.filter (fun (k, v) ->
                match v with F _ -> k <> "seconds" | S _ -> k <> "error")
              (args sp)
          else
            args sp
            @ [
                ("gc_minor_words", F sp.sp_minor_words);
                ("gc_major_words", F sp.sp_major_words);
                ("gc_heap_delta_words", F (float_of_int sp.sp_heap_delta_words));
              ]
        in
        Json.obj
          [
            ("ph", Json.str "X");
            ("name", Json.str sp.sp_name);
            ("cat", Json.str sp.sp_cat);
            ("pid", Json.int 1);
            ("tid", Json.int 1);
            ("ts", Json.float ts);
            ("dur", Json.float dur);
            ( "args",
              Json.obj (List.map (fun (k, v) -> (k, arg_json v)) args) );
          ])
      all
  in
  let metadata =
    Json.obj
      [
        ("ph", Json.str "M");
        ("name", Json.str "process_name");
        ("pid", Json.int 1);
        ("tid", Json.int 1);
        ("args", Json.obj [ ("name", Json.str "calyx toolchain") ]);
      ]
  in
  Json.obj
    [
      ("traceEvents", Json.arr (metadata :: events));
      ("displayTimeUnit", Json.str "ms");
    ]
