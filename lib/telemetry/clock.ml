(* The toolchain's one clock. [Unix.gettimeofday] is the only wall-time
   source this container guarantees, but it can step backwards (NTP);
   monotonicity is restored by clamping against the last reading, and
   readings are taken relative to process start so the float mantissa is
   spent on resolution rather than the epoch. *)

let origin = Unix.gettimeofday ()
let last = ref 0.

let now_ns () =
  let t = (Unix.gettimeofday () -. origin) *. 1e9 in
  let t = if t > !last then t else !last in
  last := t;
  t

let now_s () = now_ns () /. 1e9

let timed f =
  let t0 = now_ns () in
  let r = f () in
  (r, (now_ns () -. t0) /. 1e9)
