(* Bank-aware loading and reading of a Dahlia program's logical memories.

   Test benches talk about logical arrays (row-major); the lowered design
   may have split a banked declaration into several physical memories. *)

open Dahlia.Ast

exception Data_error of string

let data_error fmt = Format.kasprintf (fun s -> raise (Data_error s)) fmt

let find_decl (prog : prog) name =
  match List.find_opt (fun d -> String.equal d.decl_name name) prog.decls with
  | Some d -> d
  | None -> data_error "no memory %s" name

let logical_size d = List.fold_left (fun acc dim -> acc * dim.size) 1 d.dims

(* (bank indices, flat offset within the bank) of a logical coordinate. *)
let place d coords =
  let banks, offsets =
    List.split
      (List.map2
         (fun dim c -> (c mod dim.bank, c / dim.bank))
         d.dims coords)
  in
  let offset =
    List.fold_left2
      (fun acc dim off -> (acc * (dim.size / dim.bank)) + off)
      0 d.dims offsets
  in
  (banks, offset)

let coords_of_flat d flat =
  let rec go dims flat acc =
    match dims with
    | [] -> List.rev acc
    | _ :: rest ->
        let inner = List.fold_left (fun a dim -> a * dim.size) 1 rest in
        go rest (flat mod inner) ((flat / inner) :: acc)
  in
  go d.dims flat []

let physical_name d banks =
  if Dahlia.Lowering.is_banked d then Dahlia.Lowering.bank_name d.decl_name banks
  else d.decl_name

let load prog io name values =
  let d = find_decl prog name in
  let size = logical_size d in
  if List.length values <> size then
    data_error "memory %s holds %d elements, given %d" name size
      (List.length values);
  let (UBit w) = d.elem in
  (* Group values per physical bank. *)
  let buckets : (string, (int * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun flat v ->
      let banks, offset = place d (coords_of_flat d flat) in
      let phys = physical_name d banks in
      let bucket =
        match Hashtbl.find_opt buckets phys with
        | Some b -> b
        | None ->
            let b = ref [] in
            Hashtbl.add buckets phys b;
            b
      in
      bucket := (offset, v) :: !bucket)
    values;
  Hashtbl.iter
    (fun phys bucket ->
      let contents = io.Calyx_sim.Testbench.read_memory phys in
      List.iter
        (fun (off, v) -> contents.(off) <- Calyx.Bitvec.of_int ~width:w v)
        !bucket;
      io.Calyx_sim.Testbench.write_memory phys contents)
    buckets

let read prog io name =
  let d = find_decl prog name in
  let size = logical_size d in
  let cache : (string, Calyx.Bitvec.t array) Hashtbl.t = Hashtbl.create 8 in
  List.init size (fun flat ->
      let banks, offset = place d (coords_of_flat d flat) in
      let phys = physical_name d banks in
      let contents =
        match Hashtbl.find_opt cache phys with
        | Some c -> c
        | None ->
            let c = io.Calyx_sim.Testbench.read_memory phys in
            Hashtbl.add cache phys c;
            c
      in
      Calyx.Bitvec.to_int contents.(offset))
