(** Uniform execution harness for the PolyBench kernels.

    Used by both the test suite and the evaluation benches: builds a
    kernel's Calyx program, compiles it under a pass configuration,
    simulates it with its deterministic inputs, checks every output memory
    against the golden reference, and reports cycle count and the area
    model's usage. *)

type result = {
  cycles : int;
  correct : bool;
  mismatches : string list;  (** Names of output memories that differ. *)
  area : Calyx_synth.Area.usage;  (** Of the fully lowered design. *)
  timing : Calyx_synth.Timing.report;  (** STA of the same design. *)
  wall_ns : float;  (** [cycles * estimated clock period]. *)
}

val program : Kernels.kernel -> unrolled:bool -> Dahlia.Ast.prog
(** Parse the (possibly unrolled) source. Raises [Invalid_argument] when
    [unrolled] is requested but the kernel has no unrolled variant. *)

val build : Kernels.kernel -> unrolled:bool -> Calyx.Ir.context
(** The structured Calyx program (before the compilation pipeline). *)

val execute :
  ?engine:Calyx_sim.Sim.engine ->
  Kernels.kernel ->
  Dahlia.Ast.prog ->
  Calyx.Ir.context ->
  int * string list
(** Simulate an already-compiled [ctx]: load the kernel's inputs, run to
    completion, verify outputs. Returns the cycle count and the names of
    mismatching output memories. Lets benches time simulation alone. *)

val load_inputs : Kernels.kernel -> Dahlia.Ast.prog -> Calyx_sim.Testbench.io -> unit
(** Load the kernel's deterministic inputs through the bank-aware loader.
    Exposed (with {!verify}) so benches can phase-split {!execute}: time
    instantiation and simulation separately, verify untimed. *)

val verify : Kernels.kernel -> Dahlia.Ast.prog -> Calyx_sim.Testbench.io -> string list
(** Check every output memory against the golden reference; returns the
    names of those that differ. *)

val run :
  ?config:Calyx.Pipelines.config ->
  ?engine:Calyx_sim.Sim.engine ->
  Kernels.kernel ->
  unrolled:bool ->
  result
(** Compile (default: all optimizations), simulate, verify. [engine]
    selects the simulator's evaluation engine (default [`Fixpoint]). *)

val run_interp :
  ?engine:Calyx_sim.Sim.engine -> Kernels.kernel -> unrolled:bool -> result
(** Execute with the reference interpreter instead of compiling (area is
    measured on the structured program). *)

(** {1 Translation validation} *)

type rtl_result = {
  report : Calyx_verilog.Validate.report;
      (** RTL-vs-simulator agreement on cycles and all architectural state. *)
  mismatches_sim : string list;
      (** Output memories where the simulator disagrees with the golden
          reference. *)
  mismatches_rtl : string list;
      (** Output memories where the RTL interpreter disagrees with the
          golden reference. *)
}

val run_rtl :
  ?config:Calyx.Pipelines.config ->
  ?engine:Calyx_sim.Sim.engine ->
  ?max_cycles:int ->
  Kernels.kernel ->
  unrolled:bool ->
  rtl_result
(** Compile the kernel, then run the emitted SystemVerilog under the RTL
    interpreter and the lowered design under the simulator on identical
    inputs (via the shared bank-aware loader), comparing both against each
    other and against the kernel's golden reference. *)

val rtl_ok : rtl_result -> bool
(** Exact RTL/simulator agreement {e and} both match the reference. *)
