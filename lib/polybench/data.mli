(** Bank-aware data movement between test benches and compiled kernels.

    Test benches speak in {e logical} arrays (row-major); lowered designs
    may have split banked declarations into several physical memories. This
    module translates using the original (pre-lowering) declarations.

    Data moves through a {!Calyx_sim.Testbench.io}, so the same loader
    drives the cycle-accurate simulator ({!Calyx_sim.Testbench.of_sim})
    and the RTL interpreter over the emitted SystemVerilog
    ([Calyx_verilog.Validate.rtl_io]) identically — the basis of the
    translation-validation harness. *)

exception Data_error of string

val load :
  Dahlia.Ast.prog -> Calyx_sim.Testbench.io -> string -> int list -> unit
(** [load prog io name values] scatters a logical array across its
    physical banks. *)

val read : Dahlia.Ast.prog -> Calyx_sim.Testbench.io -> string -> int list
(** Gather a logical array back from its banks. *)
