module Tele = Calyx_telemetry

type result = {
  cycles : int;
  correct : bool;
  mismatches : string list;
  area : Calyx_synth.Area.usage;
  timing : Calyx_synth.Timing.report;
  wall_ns : float;
}

(* Stamp the run-manifest context so every span closed under this kernel
   run (compile, sim, validate, timing) is attributed to the kernel and
   the exact pipeline configuration that produced it. *)
let stamp_run (k : Kernels.kernel) ~unrolled ~config ~engine =
  if Tele.Runtime.on () then begin
    let source =
      if unrolled then Option.value k.Kernels.unrolled ~default:k.Kernels.source
      else k.Kernels.source
    in
    Tele.Manifest.set_run
      ~source:(if unrolled then k.Kernels.name ^ "-unrolled" else k.Kernels.name)
      ~source_hash:(Tele.Manifest.hash source)
      ~pipeline:(Calyx.Pipelines.id config)
      ~engine:
        (match engine with
        | Some `Scheduled -> "scheduled"
        | Some `Compiled -> "compiled"
        | Some `Fixpoint | None -> "fixpoint")
      ()
  end

let program (k : Kernels.kernel) ~unrolled =
  let source =
    if unrolled then
      match k.Kernels.unrolled with
      | Some src -> src
      | None -> invalid_arg (k.Kernels.name ^ " has no unrolled variant")
    else k.Kernels.source
  in
  Dahlia.Parser.parse_string source

let build k ~unrolled = Dahlia.To_calyx.compile (program k ~unrolled)

let verify (k : Kernels.kernel) prog io =
  let inputs =
    List.map (fun (name, values) -> (name, Array.of_list values)) k.Kernels.inputs
  in
  let get name =
    match List.assoc_opt name inputs with
    | Some a -> Array.copy a
    | None -> raise (Data.Data_error ("kernel has no input " ^ name))
  in
  let expected = k.Kernels.reference get in
  let mismatches =
    List.filter_map
      (fun name ->
        let got = Array.of_list (Data.read prog io name) in
        let want = List.assoc name expected in
        if got = want then None else Some name)
      k.Kernels.outputs
  in
  mismatches

let load_inputs (k : Kernels.kernel) prog io =
  List.iter (fun (name, values) -> Data.load prog io name values) k.Kernels.inputs

let execute ?(engine = `Fixpoint) (k : Kernels.kernel) prog ctx =
  let sim = Calyx_sim.Sim.create ~engine ctx in
  let io = Calyx_sim.Testbench.of_sim sim in
  load_inputs k prog io;
  let cycles = Calyx_sim.Sim.run sim in
  let mismatches = verify k prog io in
  (cycles, mismatches)

let run ?(config = Calyx.Pipelines.default_config) ?engine k ~unrolled =
  stamp_run k ~unrolled ~config ~engine;
  let prog = program k ~unrolled in
  let ctx = Dahlia.To_calyx.compile prog in
  let lowered = Calyx.Pipelines.compile ~config ctx in
  let cycles, mismatches = execute ?engine k prog lowered in
  let timing = Calyx_synth.Timing.context_timing ~paths:1 lowered in
  {
    cycles;
    correct = mismatches = [];
    mismatches;
    area = Calyx_synth.Area.context_usage lowered;
    timing;
    wall_ns = Calyx_synth.Timing.wall_ns timing ~cycles;
  }

type rtl_result = {
  report : Calyx_verilog.Validate.report;
  mismatches_sim : string list;
  mismatches_rtl : string list;
}

let run_rtl ?(config = Calyx.Pipelines.default_config) ?engine ?max_cycles k
    ~unrolled =
  stamp_run k ~unrolled ~config ~engine;
  let prog = program k ~unrolled in
  let ctx = Dahlia.To_calyx.compile prog in
  let lowered = Calyx.Pipelines.compile ~config ctx in
  let report =
    Calyx_verilog.Validate.validate ?engine ?max_cycles
      ~load:(load_inputs k prog) lowered
  in
  let mismatches_sim = verify k prog report.Calyx_verilog.Validate.sim_io in
  let mismatches_rtl = verify k prog report.Calyx_verilog.Validate.rtl_io in
  { report; mismatches_sim; mismatches_rtl }

let rtl_ok r =
  r.report.Calyx_verilog.Validate.ok
  && r.mismatches_sim = [] && r.mismatches_rtl = []

let run_interp ?engine k ~unrolled =
  stamp_run k ~unrolled ~config:Calyx.Pipelines.default_config ~engine;
  let prog = program k ~unrolled in
  let ctx = Dahlia.To_calyx.compile prog in
  let cycles, mismatches = execute ?engine k prog ctx in
  (* Structured programs are timed as their merged netlist, which can have
     cycles lowering would resolve; fall back to the lowered design. *)
  let timing =
    try Calyx_synth.Timing.context_timing ~paths:1 ctx
    with Calyx_synth.Timing.Combinational_loop _ ->
      Calyx_synth.Timing.context_timing ~paths:1
        (Calyx.Pipelines.compile ctx)
  in
  {
    cycles;
    correct = mismatches = [];
    mismatches;
    area = Calyx_synth.Area.context_usage ctx;
    timing;
    wall_ns = Calyx_synth.Timing.wall_ns timing ~cycles;
  }
