(** Simulation coverage collection (the [calyx cover] engine).

    One collector attaches to a simulation through the ordinary event sink
    and the control-event sink ({!Calyx_sim.Sim.add_sink} /
    {!Calyx_sim.Sim.add_ctrl_sink}) and accumulates four coverage views in
    a single pass:

    - {b group activation}: which groups of each component instance ran at
      least one cycle (from [ev_active]);
    - {b branch coverage}: per [if], how often each direction was taken;
      per [while], a trip-count histogram with zero-trip activations
      flagged (from the control events of the reference interpreter);
    - {b FSM-state coverage}: for {e compiled} programs, which states each
      generated [fsm] register visited, against the set of states the
      schedule can reach (every literal written to [fsm.in], plus the
      reset state 0);
    - {b port toggles}: which signals changed value at least once.

    The overall percentage combines groups, if arms, while bodies, and fsm
    states; toggles are reported separately (ports wired to constants make
    a 100% toggle total unreachable by construction). Structured programs
    exercise the first two views, compiled (flat) programs the third; both
    record toggles. *)

open Calyx

type t

val create : Ir.context -> Calyx_sim.Sim.t -> t
(** Build a collector for this program/simulation pair and attach its
    sinks. [ctx] must be the same program the simulation was created from
    (it enumerates the groups, control nodes, and fsm registers that make
    up the coverage universe). Create it before running. *)

(** {1 Raw rows} *)

type group_row = {
  gr_instance : string;  (** Instance path ([""] = entrypoint). *)
  gr_component : string;
  gr_group : string;
  gr_cycles : int;  (** Active cycles; 0 = uncovered. *)
}

type if_row = {
  ir_instance : string;
  ir_component : string;
  ir_path : string;  (** Control path, e.g. ["seq[1].if.then"]'s parent. *)
  ir_taken : int;  (** Resolutions where the condition was true. *)
  ir_untaken : int;
}

type while_row = {
  wr_instance : string;
  wr_component : string;
  wr_path : string;
  wr_entered : int;  (** Activations (enter events). *)
  wr_trips : (int * int) list;
      (** Histogram: body trip count -> completed activations. *)
  wr_zero_trip : bool;  (** Some activation ran the body zero times. *)
}

type fsm_row = {
  fr_instance : string;
  fr_component : string;
  fr_cell : string;
  fr_possible : int list;  (** Reachable-by-construction states, sorted. *)
  fr_missed : int list;  (** Possible states never observed. *)
}

val group_rows : t -> group_row list
val if_rows : t -> if_row list
val while_rows : t -> while_row list
val fsm_rows : t -> fsm_row list

val toggle_counts : t -> int * int
(** [(signals that changed value, total signals)]. *)

val untoggled : t -> string list
(** Paths of signals that never changed value. *)

(** {1 Summaries} *)

val overall_pct : t -> float
(** Covered / total over groups, if arms, while bodies, and fsm states;
    100.0 when the universe is empty. *)

val group_pct : t -> float
(** Group-activation coverage alone — the metric [--fail-under] and the CI
    gate use. *)

val cycles_observed : t -> int

val uncovered : t -> string list
(** One human-readable line per uncovered item (group, branch direction,
    while body, fsm state), in report order. *)

type rollup = {
  ru_component : string;
  ru_groups : int * int;  (** (covered, total) *)
  ru_if_arms : int * int;
  ru_whiles : int * int;
  ru_fsm_states : int * int;
}

val rollups : t -> rollup list
(** Per-component aggregation, sorted by component name. *)

(** {1 Rendering} *)

val render : t -> string
(** The human-readable report: summary line, per-view tables, rollups, and
    the named uncovered items. *)

val to_json : t -> string
(** The same data as one JSON object (snake_case keys). *)

(** {1 FSM register identification (shared with {!Spans})} *)

val fsm_registers :
  Ir.context -> Calyx_sim.Sim.t -> (string * string * int) list
(** Generated schedule registers in the design, as [(instance path, cell
    name, index into {!Calyx_sim.Sim.signals} of the register's [out]
    port)]. A cell qualifies when it is a [std_reg] carrying the
    ["generated"] attribute and named [fsm*] — the registers
    {!Calyx.Compile_control} emits. *)
