open Calyx
module Sim = Calyx_sim.Sim

type span = {
  sp_thread : string;
  sp_name : string;
  sp_path : string;
  sp_node : int;  (* preorder id; -1 for fsm-derived spans *)
  sp_enter : int;
  sp_exit : int;  (* inclusive: duration = exit - enter + 1 *)
}

type fsm_track = {
  ft_thread : string;
  ft_cell : string;
  ft_slot : int;
  mutable ft_since : (int * int) option;  (* current value, first cycle *)
}

type t = {
  labels : (string * int, string * string) Hashtbl.t;
      (* (instance, node) -> (control path, label) *)
  open_nodes : (string * int, int) Hashtbl.t;  (* -> enter cycle *)
  mutable closed : span list;  (* reverse completion order *)
  mutable last_cycle : int;  (* last observed cycle, -1 before any *)
  fsms : fsm_track list;
}

let thread_of inst cell = if inst = "" then cell else inst ^ "." ^ cell

let node_span t inst node ~enter ~exit =
  let path, label =
    try Hashtbl.find t.labels (inst, node)
    with Not_found -> ("?", Printf.sprintf "node %d" node)
  in
  {
    sp_thread = inst;
    sp_name = label;
    sp_path = path;
    sp_node = node;
    sp_enter = enter;
    sp_exit = exit;
  }

let ctrl_sink t (ce : Sim.ctrl_event) =
  t.last_cycle <- max t.last_cycle ce.Sim.ce_cycle;
  let key = (ce.Sim.ce_instance, ce.Sim.ce_node) in
  match ce.Sim.ce_phase with
  | Sim.Ctrl_enter -> Hashtbl.replace t.open_nodes key ce.Sim.ce_cycle
  | Sim.Ctrl_exit ->
      let enter =
        match Hashtbl.find_opt t.open_nodes key with
        | Some c -> c
        | None -> ce.Sim.ce_cycle
      in
      Hashtbl.remove t.open_nodes key;
      (* A zero-work node (e.g. an empty seq reached mid-run) exits at the
         edge before its stamped enter cycle; clamp to a 1-cycle span. *)
      t.closed <-
        node_span t ce.Sim.ce_instance ce.Sim.ce_node ~enter
          ~exit:(max ce.Sim.ce_cycle enter)
        :: t.closed
  | Sim.Ctrl_branch _ -> ()

let value_sink t (ev : Sim.event) =
  t.last_cycle <- max t.last_cycle ev.Sim.ev_cycle;
  List.iter
    (fun ft ->
      let v = Bitvec.to_int ev.Sim.ev_values.(ft.ft_slot) in
      match ft.ft_since with
      | Some (prev, _) when prev = v -> ()
      | Some (prev, since) ->
          t.closed <-
            {
              sp_thread = ft.ft_thread;
              sp_name = Printf.sprintf "%s=%d" ft.ft_cell prev;
              sp_path = ft.ft_cell;
              sp_node = -1;
              sp_enter = since;
              sp_exit = ev.Sim.ev_cycle - 1;
            }
            :: t.closed;
          ft.ft_since <- Some (v, ev.Sim.ev_cycle)
      | None -> ft.ft_since <- Some (v, ev.Sim.ev_cycle))
    t.fsms

let create ctx sim =
  let labels = Hashtbl.create 32 in
  List.iter
    (fun (inst, comp_name) ->
      match Ir.find_component_opt ctx comp_name with
      | None -> ()
      | Some comp ->
          List.iter
            (fun (id, path, node) ->
              Hashtbl.replace labels (inst, id)
                (path, Ir.control_node_label node))
            (Ir.control_preorder comp.Ir.control))
    (Sim.instances sim);
  let t =
    {
      labels;
      open_nodes = Hashtbl.create 16;
      closed = [];
      last_cycle = -1;
      fsms = [];
    }
  in
  Sim.add_ctrl_sink sim (ctrl_sink t);
  Sim.add_sink sim (fun ev -> t.last_cycle <- max t.last_cycle ev.Sim.ev_cycle);
  t

let create_fsm ctx sim =
  let t =
    {
      labels = Hashtbl.create 1;
      open_nodes = Hashtbl.create 1;
      closed = [];
      last_cycle = -1;
      fsms =
        List.map
          (fun (inst, cell, slot) ->
            {
              ft_thread = thread_of inst cell;
              ft_cell = cell;
              ft_slot = slot;
              ft_since = None;
            })
          (Coverage.fsm_registers ctx sim);
    }
  in
  Sim.add_sink sim (value_sink t);
  t

(* Residual spans (still open at the last observed cycle — a timed-out run,
   or fsm values held through the final cycle) are closed at export time so
   partial traces stay loadable. *)
let spans t =
  let residual =
    Hashtbl.fold
      (fun (inst, node) enter acc ->
        if t.last_cycle < enter then acc
        else node_span t inst node ~enter ~exit:t.last_cycle :: acc)
      t.open_nodes []
  in
  let fsm_residual =
    List.filter_map
      (fun ft ->
        match ft.ft_since with
        | Some (v, since) when t.last_cycle >= since ->
            Some
              {
                sp_thread = ft.ft_thread;
                sp_name = Printf.sprintf "%s=%d" ft.ft_cell v;
                sp_path = ft.ft_cell;
                sp_node = -1;
                sp_enter = since;
                sp_exit = t.last_cycle;
              }
        | _ -> None)
      t.fsms
  in
  List.rev_append t.closed (residual @ fsm_residual)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export (load at ui.perfetto.dev)                 *)
(* ------------------------------------------------------------------ *)

let thread_display name = if name = "" then "<entry>" else name

let to_chrome t =
  let all = spans t in
  let threads =
    List.sort_uniq compare (List.map (fun s -> s.sp_thread) all)
  in
  let tid th =
    let rec go i = function
      | [] -> 0
      | x :: _ when x = th -> i
      | _ :: rest -> go (i + 1) rest
    in
    1 + go 0 threads
  in
  let metadata =
    List.map
      (fun th ->
        Json.obj
          [
            ("ph", Json.str "M");
            ("name", Json.str "thread_name");
            ("pid", Json.int 1);
            ("tid", Json.int (tid th));
            ("args", Json.obj [ ("name", Json.str (thread_display th)) ]);
          ])
      threads
  in
  (* One complete ("X") event per span; 1 cycle = 1 µs. Sorted so nesting
     renders correctly: by thread, then start time, longest span first. *)
  let ordered =
    List.sort
      (fun a b ->
        match compare (tid a.sp_thread) (tid b.sp_thread) with
        | 0 -> (
            match compare a.sp_enter b.sp_enter with
            | 0 -> (
                let dur s = s.sp_exit - s.sp_enter in
                match compare (dur b) (dur a) with
                | 0 -> compare a.sp_node b.sp_node
                | c -> c)
            | c -> c)
        | c -> c)
      all
  in
  let events =
    List.map
      (fun s ->
        Json.obj
          [
            ("name", Json.str s.sp_name);
            ("cat", Json.str (if s.sp_node >= 0 then "control" else "fsm"));
            ("ph", Json.str "X");
            ("pid", Json.int 1);
            ("tid", Json.int (tid s.sp_thread));
            ("ts", Json.int s.sp_enter);
            ("dur", Json.int (s.sp_exit - s.sp_enter + 1));
            ( "args",
              Json.obj
                (("path", Json.str s.sp_path)
                ::
                (if s.sp_node >= 0 then [ ("node", Json.int s.sp_node) ]
                 else [])) );
          ])
      ordered
  in
  Json.obj
    [
      ("traceEvents", Json.arr (metadata @ events));
      ("displayTimeUnit", Json.str "ms");
    ]
