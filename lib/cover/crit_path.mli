(** Par critical-path analysis over recorded control spans.

    For every executed [par] statement (every activation separately, when a
    [par] runs inside a loop), attributes cycles to each arm, computes the
    slack against the slowest arm, and names the bottleneck. Arms that are
    plain group enables are cross-checked against the latency
    {!Calyx.Infer_latency} derives (plus the done-observation cycle unless
    the group's done is combinational — the {!Calyx_obs.Profile}
    convention); on a static program the measured and expected durations
    agree, and any disagreement is flagged. *)

open Calyx

type arm_report = {
  ar_path : string;  (** Control path of the arm, e.g. ["par[1]"]. *)
  ar_label : string;  (** {!Ir.control_node_label} of the arm. *)
  ar_cycles : int;  (** Measured duration; 0 if no span was recorded. *)
  ar_slack : int;  (** Bottleneck arm's cycles minus this arm's. *)
  ar_expected : int option;  (** For enable arms with derivable latency. *)
  ar_mismatch : bool;  (** [expected] present and different. *)
}

type par_report = {
  pr_instance : string;
  pr_component : string;
  pr_path : string;  (** Control path of the [par] ([""] = root). *)
  pr_enter : int;  (** First cycle of this activation. *)
  pr_cycles : int;
  pr_bottleneck : string;  (** Path of the slowest arm. *)
  pr_arms : arm_report list;
}

val analyze :
  Ir.context -> Calyx_sim.Sim.t -> Spans.t -> par_report list
(** Join the spans recorded by {!Spans.create} back to the [par] nodes of
    [ctx]; one report per par activation, sorted by instance, path, and
    start cycle. Call after the run completes. *)

val mismatches : par_report list -> arm_report list
(** All arms whose measured duration disagrees with the derived latency. *)

val render : ?period_ns:float -> par_report list -> string
(** With [period_ns] (the STA-estimated clock period), each par activation
    additionally reports its wall-clock duration and each arm its slack in
    nanoseconds. *)

val to_json : ?period_ns:float -> par_report list -> string
(** A JSON array, one object per par activation; with [period_ns], par
    objects gain an ["ns"] field and arms a ["slack_ns"] field. *)
