open Calyx
module Sim = Calyx_sim.Sim

(* ------------------------------------------------------------------ *)
(* FSM register identification (shared with Spans)                     *)
(* ------------------------------------------------------------------ *)

let is_fsm_cell (c : Ir.cell) =
  match c.Ir.cell_proto with
  | Ir.Prim ("std_reg", _) ->
      Attrs.get "generated" ~default:0 c.Ir.cell_attrs <> 0
      && String.length c.Ir.cell_name >= 3
      && String.sub c.Ir.cell_name 0 3 = "fsm"
  | _ -> false

(* States a compiled schedule can put an fsm register in: every literal
   written to its [in] port, plus the reset state 0. *)
let fsm_possible_states (comp : Ir.component) cell_name =
  let states = Hashtbl.create 8 in
  Hashtbl.replace states 0 ();
  List.iter
    (fun (a : Ir.assignment) ->
      match (a.Ir.dst, a.Ir.src) with
      | Ir.Cell_port (c, "in"), Ir.Lit v when c = cell_name ->
          Hashtbl.replace states (Bitvec.to_int v) ()
      | _ -> ())
    (Ir.all_assignments comp);
  List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) states [])

let fsm_registers ctx sim =
  let out_slot = Hashtbl.create 16 in
  Array.iteri
    (fun i (s : Sim.signal) ->
      match s.Sim.sig_kind with
      | Sim.Sig_cell (cell, "out") ->
          Hashtbl.replace out_slot (s.Sim.sig_instance, cell) i
      | _ -> ())
    (Sim.signals sim);
  List.concat_map
    (fun (inst, comp_name) ->
      match Ir.find_component_opt ctx comp_name with
      | None -> []
      | Some comp ->
          List.filter_map
            (fun (c : Ir.cell) ->
              if not (is_fsm_cell c) then None
              else
                match Hashtbl.find_opt out_slot (inst, c.Ir.cell_name) with
                | None -> None
                | Some slot -> Some (inst, c.Ir.cell_name, slot))
            comp.Ir.cells)
    (Sim.instances sim)

(* ------------------------------------------------------------------ *)
(* Collector state                                                     *)
(* ------------------------------------------------------------------ *)

type node_kind = KIf | KWhile

type node_info = { ni_component : string; ni_path : string }

type if_acc = { mutable if_taken : int; mutable if_untaken : int }

type while_acc = {
  mutable wh_cur : int;  (* body trips in the current activation *)
  mutable wh_entered : int;
  wh_hist : (int, int) Hashtbl.t;  (* trip count -> completed activations *)
}

type fsm_watch = {
  fw_instance : string;
  fw_component : string;
  fw_cell : string;
  fw_slot : int;
  fw_possible : int list;
  fw_observed : (int, unit) Hashtbl.t;
}

type t = {
  inst_comp : (string, string) Hashtbl.t;
  group_cycles : (string * string, int ref) Hashtbl.t;
      (* pre-seeded with every group of every instance *)
  nodes : (string * int, node_kind * node_info) Hashtbl.t;
  ifs : (string * int, if_acc) Hashtbl.t;
  whiles : (string * int, while_acc) Hashtbl.t;
  fsms : fsm_watch list;
  signals : Sim.signal array;
  toggled : bool array;
  mutable prev_values : Bitvec.t array option;
  mutable cycles : int;
}

let sink t (ev : Sim.event) =
  t.cycles <- t.cycles + 1;
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.group_cycles key with
      | Some r -> incr r
      | None -> Hashtbl.replace t.group_cycles key (ref 1))
    ev.Sim.ev_active;
  (match t.prev_values with
  | None -> ()
  | Some prev ->
      Array.iteri
        (fun i v ->
          if not (Bitvec.equal prev.(i) v) then t.toggled.(i) <- true)
        ev.Sim.ev_values);
  t.prev_values <- Some ev.Sim.ev_values;
  List.iter
    (fun fw ->
      Hashtbl.replace fw.fw_observed
        (Bitvec.to_int ev.Sim.ev_values.(fw.fw_slot))
        ())
    t.fsms

let ctrl_sink t (ce : Sim.ctrl_event) =
  let key = (ce.Sim.ce_instance, ce.Sim.ce_node) in
  match Hashtbl.find_opt t.ifs key with
  | Some acc -> (
      match ce.Sim.ce_phase with
      | Sim.Ctrl_branch true -> acc.if_taken <- acc.if_taken + 1
      | Sim.Ctrl_branch false -> acc.if_untaken <- acc.if_untaken + 1
      | _ -> ())
  | None -> (
      match Hashtbl.find_opt t.whiles key with
      | None -> ()
      | Some acc -> (
          match ce.Sim.ce_phase with
          | Sim.Ctrl_enter ->
              acc.wh_cur <- 0;
              acc.wh_entered <- acc.wh_entered + 1
          | Sim.Ctrl_branch true -> acc.wh_cur <- acc.wh_cur + 1
          | Sim.Ctrl_branch false -> ()
          | Sim.Ctrl_exit ->
              let n =
                try Hashtbl.find acc.wh_hist acc.wh_cur with Not_found -> 0
              in
              Hashtbl.replace acc.wh_hist acc.wh_cur (n + 1)))

let create ctx sim =
  let inst_comp = Hashtbl.create 16 in
  let group_cycles = Hashtbl.create 32 in
  let nodes = Hashtbl.create 32 in
  let ifs = Hashtbl.create 8 in
  let whiles = Hashtbl.create 8 in
  List.iter
    (fun (inst, comp_name) ->
      Hashtbl.replace inst_comp inst comp_name;
      match Ir.find_component_opt ctx comp_name with
      | None -> ()
      | Some comp ->
          List.iter
            (fun (g : Ir.group) ->
              Hashtbl.replace group_cycles (inst, g.Ir.group_name) (ref 0))
            comp.Ir.groups;
          List.iter
            (fun (id, path, node) ->
              let info = { ni_component = comp_name; ni_path = path } in
              match node with
              | Ir.If _ ->
                  Hashtbl.replace nodes (inst, id) (KIf, info);
                  Hashtbl.replace ifs (inst, id)
                    { if_taken = 0; if_untaken = 0 }
              | Ir.While _ ->
                  Hashtbl.replace nodes (inst, id) (KWhile, info);
                  Hashtbl.replace whiles (inst, id)
                    { wh_cur = 0; wh_entered = 0; wh_hist = Hashtbl.create 4 }
              | _ -> ())
            (Ir.control_preorder comp.Ir.control))
    (Sim.instances sim);
  let t =
    {
      inst_comp;
      group_cycles;
      nodes;
      ifs;
      whiles;
      fsms =
        List.map
          (fun (inst, cell, slot) ->
            let comp_name = Hashtbl.find inst_comp inst in
            {
              fw_instance = inst;
              fw_component = comp_name;
              fw_cell = cell;
              fw_slot = slot;
              fw_possible =
                fsm_possible_states (Ir.find_component ctx comp_name) cell;
              fw_observed = Hashtbl.create 8;
            })
          (fsm_registers ctx sim);
      signals = Sim.signals sim;
      toggled = Array.make (Array.length (Sim.signals sim)) false;
      prev_values = None;
      cycles = 0;
    }
  in
  Sim.add_sink sim (sink t);
  Sim.add_ctrl_sink sim (ctrl_sink t);
  t

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type group_row = {
  gr_instance : string;
  gr_component : string;
  gr_group : string;
  gr_cycles : int;
}

type if_row = {
  ir_instance : string;
  ir_component : string;
  ir_path : string;
  ir_taken : int;
  ir_untaken : int;
}

type while_row = {
  wr_instance : string;
  wr_component : string;
  wr_path : string;
  wr_entered : int;
  wr_trips : (int * int) list;  (* trip count -> completed activations *)
  wr_zero_trip : bool;
}

type fsm_row = {
  fr_instance : string;
  fr_component : string;
  fr_cell : string;
  fr_possible : int list;
  fr_missed : int list;
}

let component_of t inst =
  try Hashtbl.find t.inst_comp inst with Not_found -> "?"

let by_location a b = compare a b

let group_rows t =
  Hashtbl.fold
    (fun (inst, group) cycles acc ->
      {
        gr_instance = inst;
        gr_component = component_of t inst;
        gr_group = group;
        gr_cycles = !cycles;
      }
      :: acc)
    t.group_cycles []
  |> List.sort (fun a b ->
         by_location (a.gr_instance, a.gr_group) (b.gr_instance, b.gr_group))

let if_rows t =
  Hashtbl.fold
    (fun (inst, id) acc rows ->
      let _, info = Hashtbl.find t.nodes (inst, id) in
      {
        ir_instance = inst;
        ir_component = info.ni_component;
        ir_path = info.ni_path;
        ir_taken = acc.if_taken;
        ir_untaken = acc.if_untaken;
      }
      :: rows)
    t.ifs []
  |> List.sort (fun a b ->
         by_location (a.ir_instance, a.ir_path) (b.ir_instance, b.ir_path))

let while_rows t =
  Hashtbl.fold
    (fun (inst, id) acc rows ->
      let _, info = Hashtbl.find t.nodes (inst, id) in
      let trips =
        List.sort compare
          (Hashtbl.fold (fun k v l -> (k, v) :: l) acc.wh_hist [])
      in
      {
        wr_instance = inst;
        wr_component = info.ni_component;
        wr_path = info.ni_path;
        wr_entered = acc.wh_entered;
        wr_trips = trips;
        wr_zero_trip = List.mem_assoc 0 trips;
      }
      :: rows)
    t.whiles []
  |> List.sort (fun a b ->
         by_location (a.wr_instance, a.wr_path) (b.wr_instance, b.wr_path))

let fsm_rows t =
  List.map
    (fun fw ->
      {
        fr_instance = fw.fw_instance;
        fr_component = fw.fw_component;
        fr_cell = fw.fw_cell;
        fr_possible = fw.fw_possible;
        fr_missed =
          List.filter
            (fun s -> not (Hashtbl.mem fw.fw_observed s))
            fw.fw_possible;
      })
    t.fsms
  |> List.sort (fun a b ->
         by_location (a.fr_instance, a.fr_cell) (b.fr_instance, b.fr_cell))

let while_body_ran w = List.exists (fun (trips, _) -> trips > 0) w.wr_trips

let toggle_counts t =
  let covered = ref 0 in
  Array.iter (fun b -> if b then incr covered) t.toggled;
  (!covered, Array.length t.toggled)

let untoggled t =
  let acc = ref [] in
  Array.iteri
    (fun i b ->
      if not b then acc := t.signals.(i).Sim.sig_path :: !acc)
    t.toggled;
  List.rev !acc

(* Overall coverage counts group activations, both if arms, while bodies,
   and fsm states; port toggles are reported separately (constant-driven
   ports make a toggle total of 100% unreachable by construction). *)
let counts t =
  let groups = group_rows t in
  let ifs = if_rows t in
  let whiles = while_rows t in
  let fsms = fsm_rows t in
  let covered = ref 0 and total = ref 0 in
  let item hit =
    incr total;
    if hit then incr covered
  in
  List.iter (fun g -> item (g.gr_cycles > 0)) groups;
  List.iter
    (fun i ->
      item (i.ir_taken > 0);
      item (i.ir_untaken > 0))
    ifs;
  List.iter (fun w -> item (while_body_ran w)) whiles;
  List.iter
    (fun f ->
      List.iter (fun s -> item (not (List.mem s f.fr_missed))) f.fr_possible)
    fsms;
  (!covered, !total)

let pct (covered, total) =
  if total = 0 then 100. else 100. *. float_of_int covered /. float_of_int total

let overall_pct t = pct (counts t)

let group_counts t =
  let groups = group_rows t in
  ( List.length (List.filter (fun g -> g.gr_cycles > 0) groups),
    List.length groups )

let group_pct t = pct (group_counts t)

let cycles_observed t = t.cycles

let qualify inst name = if inst = "" then name else inst ^ "." ^ name

let uncovered t =
  let acc = ref [] in
  let add fmt = Printf.ksprintf (fun s -> acc := s :: !acc) fmt in
  List.iter
    (fun g ->
      if g.gr_cycles = 0 then
        add "group %s (component %s) never activated"
          (qualify g.gr_instance g.gr_group)
          g.gr_component)
    (group_rows t);
  List.iter
    (fun i ->
      let where =
        Printf.sprintf "if %s (component %s)"
          (qualify i.ir_instance i.ir_path)
          i.ir_component
      in
      if i.ir_taken = 0 then add "%s: then-branch never taken" where;
      if i.ir_untaken = 0 then add "%s: else-branch never taken" where)
    (if_rows t);
  List.iter
    (fun w ->
      if not (while_body_ran w) then
        add "while %s (component %s): body never executed"
          (qualify w.wr_instance w.wr_path)
          w.wr_component)
    (while_rows t);
  List.iter
    (fun f ->
      List.iter
        (fun s ->
          add "fsm %s (component %s): state %d never reached"
            (qualify f.fr_instance f.fr_cell)
            f.fr_component s)
        f.fr_missed)
    (fsm_rows t);
  List.rev !acc

(* Per-component rollups. *)

type rollup = {
  ru_component : string;
  ru_groups : int * int;
  ru_if_arms : int * int;
  ru_whiles : int * int;
  ru_fsm_states : int * int;
}

let rollups t =
  let table : (string, int array) Hashtbl.t = Hashtbl.create 8 in
  (* [covered; total] per class: groups, if arms, whiles, fsm states *)
  let bump comp cls hit =
    let a =
      match Hashtbl.find_opt table comp with
      | Some a -> a
      | None ->
          let a = Array.make 8 0 in
          Hashtbl.replace table comp a;
          a
    in
    if hit then a.(2 * cls) <- a.(2 * cls) + 1;
    a.((2 * cls) + 1) <- a.((2 * cls) + 1) + 1
  in
  List.iter (fun g -> bump g.gr_component 0 (g.gr_cycles > 0)) (group_rows t);
  List.iter
    (fun i ->
      bump i.ir_component 1 (i.ir_taken > 0);
      bump i.ir_component 1 (i.ir_untaken > 0))
    (if_rows t);
  List.iter (fun w -> bump w.wr_component 2 (while_body_ran w)) (while_rows t);
  List.iter
    (fun f ->
      List.iter
        (fun s -> bump f.fr_component 3 (not (List.mem s f.fr_missed)))
        f.fr_possible)
    (fsm_rows t);
  Hashtbl.fold
    (fun comp a acc ->
      {
        ru_component = comp;
        ru_groups = (a.(0), a.(1));
        ru_if_arms = (a.(2), a.(3));
        ru_whiles = (a.(4), a.(5));
        ru_fsm_states = (a.(6), a.(7));
      }
      :: acc)
    table []
  |> List.sort (fun a b -> compare a.ru_component b.ru_component)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let ratio (covered, total) = Printf.sprintf "%d/%d" covered total

let render t =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "cycles observed: %d\n" t.cycles;
  pf "overall coverage: %.1f%% (groups %.1f%%)\n" (overall_pct t)
    (group_pct t);
  let groups = group_rows t in
  if groups <> [] then begin
    pf "\ngroup activation:\n";
    Calyx_obs.Tables.add_table buf
      ([ "group"; "component"; "cycles"; "covered" ]
      :: List.map
           (fun g ->
             [
               qualify g.gr_instance g.gr_group;
               g.gr_component;
               string_of_int g.gr_cycles;
               (if g.gr_cycles > 0 then "yes" else "NO");
             ])
           groups)
  end;
  let ifs = if_rows t in
  if ifs <> [] then begin
    pf "\nif branches:\n";
    Calyx_obs.Tables.add_table buf
      ([ "if"; "component"; "taken"; "not-taken"; "covered" ]
      :: List.map
           (fun i ->
             [
               qualify i.ir_instance i.ir_path;
               i.ir_component;
               string_of_int i.ir_taken;
               string_of_int i.ir_untaken;
               (if i.ir_taken > 0 && i.ir_untaken > 0 then "yes" else "NO");
             ])
           ifs)
  end;
  let whiles = while_rows t in
  if whiles <> [] then begin
    pf "\nwhile loops:\n";
    Calyx_obs.Tables.add_table buf
      ([ "while"; "component"; "activations"; "trip counts"; "zero-trip" ]
      :: List.map
           (fun w ->
             [
               qualify w.wr_instance w.wr_path;
               w.wr_component;
               string_of_int w.wr_entered;
               String.concat ", "
                 (List.map
                    (fun (trips, n) -> Printf.sprintf "%dx%d" trips n)
                    w.wr_trips);
               (if w.wr_zero_trip then "FLAGGED" else "no");
             ])
           whiles)
  end;
  let fsms = fsm_rows t in
  if fsms <> [] then begin
    pf "\nfsm states:\n";
    Calyx_obs.Tables.add_table buf
      ([ "fsm"; "component"; "states"; "missed" ]
      :: List.map
           (fun f ->
             [
               qualify f.fr_instance f.fr_cell;
               f.fr_component;
               ratio
                 ( List.length f.fr_possible - List.length f.fr_missed,
                   List.length f.fr_possible );
               (match f.fr_missed with
               | [] -> "-"
               | ss -> String.concat "," (List.map string_of_int ss));
             ])
           fsms)
  end;
  let covered, total = toggle_counts t in
  pf "\nport toggle activity: %d/%d signals changed value\n" covered total;
  let rus = rollups t in
  if rus <> [] then begin
    pf "\nper-component rollup:\n";
    Calyx_obs.Tables.add_table buf
      ([ "component"; "groups"; "if-arms"; "whiles"; "fsm-states" ]
      :: List.map
           (fun r ->
             [
               r.ru_component;
               ratio r.ru_groups;
               ratio r.ru_if_arms;
               ratio r.ru_whiles;
               ratio r.ru_fsm_states;
             ])
           rus)
  end;
  (match uncovered t with
  | [] -> pf "\nno uncovered items\n"
  | items ->
      pf "\nuncovered items:\n";
      List.iter (fun s -> pf "  %s\n" s) items);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let to_json t =
  let pair (covered, total) =
    [ ("covered", Json.int covered); ("total", Json.int total) ]
  in
  let groups =
    List.map
      (fun g ->
        Json.obj
          [
            ("instance", Json.str g.gr_instance);
            ("component", Json.str g.gr_component);
            ("group", Json.str g.gr_group);
            ("active_cycles", Json.int g.gr_cycles);
            ("covered", Json.bool (g.gr_cycles > 0));
          ])
      (group_rows t)
  in
  let ifs =
    List.map
      (fun i ->
        Json.obj
          [
            ("instance", Json.str i.ir_instance);
            ("component", Json.str i.ir_component);
            ("path", Json.str i.ir_path);
            ("taken", Json.int i.ir_taken);
            ("not_taken", Json.int i.ir_untaken);
            ("covered", Json.bool (i.ir_taken > 0 && i.ir_untaken > 0));
          ])
      (if_rows t)
  in
  let whiles =
    List.map
      (fun w ->
        Json.obj
          [
            ("instance", Json.str w.wr_instance);
            ("component", Json.str w.wr_component);
            ("path", Json.str w.wr_path);
            ("activations", Json.int w.wr_entered);
            ( "trip_counts",
              Json.obj
                (List.map
                   (fun (trips, n) -> (string_of_int trips, Json.int n))
                   w.wr_trips) );
            ("zero_trip", Json.bool w.wr_zero_trip);
            ("covered", Json.bool (while_body_ran w));
          ])
      (while_rows t)
  in
  let fsms =
    List.map
      (fun f ->
        Json.obj
          [
            ("instance", Json.str f.fr_instance);
            ("component", Json.str f.fr_component);
            ("cell", Json.str f.fr_cell);
            ("possible_states", Json.arr (List.map Json.int f.fr_possible));
            ("missed_states", Json.arr (List.map Json.int f.fr_missed));
          ])
      (fsm_rows t)
  in
  let components =
    List.map
      (fun r ->
        Json.obj
          [
            ("component", Json.str r.ru_component);
            ("groups", Json.obj (pair r.ru_groups));
            ("if_arms", Json.obj (pair r.ru_if_arms));
            ("whiles", Json.obj (pair r.ru_whiles));
            ("fsm_states", Json.obj (pair r.ru_fsm_states));
          ])
      (rollups t)
  in
  Json.obj
    [
      ("cycles", Json.int t.cycles);
      ("overall_pct", Json.float (overall_pct t));
      ("group_pct", Json.float (group_pct t));
      ("groups", Json.arr groups);
      ("ifs", Json.arr ifs);
      ("whiles", Json.arr whiles);
      ("fsms", Json.arr fsms);
      ( "toggles",
        Json.obj
          (pair (toggle_counts t)
          @ [ ("untoggled", Json.arr (List.map Json.str (untoggled t))) ]) );
      ("components", Json.arr components);
      ("uncovered", Json.arr (List.map Json.str (uncovered t)));
    ]
