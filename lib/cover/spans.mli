(** Control-tree span collection and Chrome trace_event export.

    {!create} listens to the reference interpreter's control events
    ({!Calyx_sim.Sim.ctrl_event}) and records one span per control-node
    activation: [seq]/[par]/[if]/[while]/[enable] each get an interval
    [enter..exit] in cycles (inclusive at both ends — a node that starts
    and finishes at the same clock edge spans one cycle).

    {!create_fsm} serves {e compiled} programs, which have no control tree:
    it derives spans from the value runs of the generated [fsm] schedule
    registers instead ("fsm=3" for the interval the register held 3), one
    trace thread per register.

    {!to_chrome} renders either kind as Chrome trace_event JSON — open
    {:https://ui.perfetto.dev} and drop the file in. Instances (or fsm
    registers) become named threads; 1 cycle = 1 µs. *)

open Calyx

type span = {
  sp_thread : string;
      (** Instance path for control spans ([""] = entrypoint); [instance.cell]
          for fsm spans. *)
  sp_name : string;  (** Label: ["seq"], ["enable g"], ["fsm=3"], … *)
  sp_path : string;  (** Control path within the component, or cell name. *)
  sp_node : int;  (** {!Ir.control_preorder} id; [-1] for fsm spans. *)
  sp_enter : int;
  sp_exit : int;  (** Inclusive; duration is [exit - enter + 1] cycles. *)
}

type t

val create : Ir.context -> Calyx_sim.Sim.t -> t
(** Attach a control-span collector ([ctx] supplies node labels/paths). *)

val create_fsm : Ir.context -> Calyx_sim.Sim.t -> t
(** Attach an fsm-value span collector (for compiled programs). *)

val spans : t -> span list
(** All recorded spans. Spans still open at the last observed cycle (a
    timed-out run) are closed there, so partial traces stay loadable. *)

val to_chrome : t -> string
(** The spans as a Chrome trace_event JSON document ([traceEvents] array of
    ["X"] complete events plus thread-name metadata), deterministically
    ordered. *)
