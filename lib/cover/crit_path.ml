open Calyx
module Sim = Calyx_sim.Sim

type arm_report = {
  ar_path : string;
  ar_label : string;
  ar_cycles : int;
  ar_slack : int;
  ar_expected : int option;
  ar_mismatch : bool;
}

type par_report = {
  pr_instance : string;
  pr_component : string;
  pr_path : string;
  pr_enter : int;
  pr_cycles : int;
  pr_bottleneck : string;
  pr_arms : arm_report list;
}

let join p q = if p = "" then q else p ^ "." ^ q

(* Expected arm duration as the interpreter measures it, for arms that are
   plain group enables: the derived latency, plus the done-observation
   cycle unless the group's done hole is combinational. Composite arms get
   no expectation (their latency composes control overhead this analysis is
   precisely there to measure). *)
let arm_expectation ctx comp (node : Ir.control) =
  match node with
  | Ir.Enable (g, _) -> (
      match Ir.find_group_opt comp g with
      | None -> None
      | Some grp ->
          Option.map
            (fun d ->
              if Calyx_obs.Profile.combinational_done grp then d else d + 1)
            (Infer_latency.derived_group_latency ctx comp grp))
  | _ -> None

let analyze ctx sim spans_t =
  let by_node : (string * int, (int * int) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (s : Spans.span) ->
      if s.Spans.sp_node >= 0 then begin
        let key = (s.Spans.sp_thread, s.Spans.sp_node) in
        let l =
          match Hashtbl.find_opt by_node key with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace by_node key l;
              l
        in
        l := (s.Spans.sp_enter, s.Spans.sp_exit) :: !l
      end)
    (Spans.spans spans_t);
  let occurrences key =
    match Hashtbl.find_opt by_node key with
    | None -> []
    | Some l -> List.sort compare !l
  in
  let reports = ref [] in
  List.iter
    (fun (inst, comp_name) ->
      match Ir.find_component_opt ctx comp_name with
      | None -> ()
      | Some comp ->
          let pre = Ir.control_preorder comp.Ir.control in
          let id_by_path = Hashtbl.create 16 in
          List.iter
            (fun (id, path, _) -> Hashtbl.replace id_by_path path id)
            pre;
          List.iter
            (fun (_, path, node) ->
              match node with
              | Ir.Par (cs, _) ->
                  let arms =
                    (* arm indices are positions in the original child
                       list, Empty children included, to match the paths
                       iter_control_path assigns *)
                    List.concat
                      (List.mapi
                         (fun i c ->
                           if c = Ir.Empty then []
                           else
                             let arm_path =
                               join path (Printf.sprintf "par[%d]" i)
                             in
                             match Hashtbl.find_opt id_by_path arm_path with
                             | None -> []
                             | Some id ->
                                 [
                                   ( arm_path,
                                     Ir.control_node_label c,
                                     id,
                                     arm_expectation ctx comp c );
                                 ])
                         cs)
                  in
                  let par_id = Hashtbl.find id_by_path path in
                  List.iter
                    (fun (p_enter, p_exit) ->
                      let measured =
                        List.map
                          (fun (arm_path, label, id, expected) ->
                            let cycles =
                              match
                                List.find_opt
                                  (fun (en, ex) ->
                                    en >= p_enter && ex <= p_exit)
                                  (occurrences (inst, id))
                              with
                              | Some (en, ex) -> ex - en + 1
                              | None -> 0
                            in
                            (arm_path, label, cycles, expected))
                          arms
                      in
                      let bottleneck_cycles =
                        List.fold_left
                          (fun m (_, _, c, _) -> max m c)
                          0 measured
                      in
                      let bottleneck =
                        match
                          List.find_opt
                            (fun (_, _, c, _) -> c = bottleneck_cycles)
                            measured
                        with
                        | Some (p, _, _, _) -> p
                        | None -> "-"
                      in
                      reports :=
                        {
                          pr_instance = inst;
                          pr_component = comp_name;
                          pr_path = path;
                          pr_enter = p_enter;
                          pr_cycles = p_exit - p_enter + 1;
                          pr_bottleneck = bottleneck;
                          pr_arms =
                            List.map
                              (fun (arm_path, label, cycles, expected) ->
                                {
                                  ar_path = arm_path;
                                  ar_label = label;
                                  ar_cycles = cycles;
                                  ar_slack = bottleneck_cycles - cycles;
                                  ar_expected = expected;
                                  ar_mismatch =
                                    (match expected with
                                    | Some e -> e <> cycles
                                    | None -> false);
                                })
                              measured;
                        }
                        :: !reports)
                    (occurrences (inst, par_id))
              | _ -> ())
            pre)
    (Sim.instances sim);
  List.sort
    (fun a b ->
      compare
        (a.pr_instance, a.pr_path, a.pr_enter)
        (b.pr_instance, b.pr_path, b.pr_enter))
    (List.rev !reports)

let mismatches reports =
  List.concat_map
    (fun pr -> List.filter (fun a -> a.ar_mismatch) pr.pr_arms)
    reports

let render ?period_ns reports =
  if reports = [] then "no par statements executed\n"
  else begin
    let buf = Buffer.create 512 in
    let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    List.iteri
      (fun i pr ->
        if i > 0 then Buffer.add_char buf '\n';
        let where = if pr.pr_path = "" then "par" else "par " ^ pr.pr_path in
        let inst =
          if pr.pr_instance = "" then "" else " in " ^ pr.pr_instance
        in
        let wall =
          match period_ns with
          | None -> ""
          | Some p ->
              Printf.sprintf " (%.1f ns @ %.2f ns/cycle)"
                (float_of_int pr.pr_cycles *. p)
                p
        in
        pf "%s (component %s%s), cycles %d-%d: %d cycles%s, bottleneck %s\n"
          where pr.pr_component inst pr.pr_enter
          (pr.pr_enter + pr.pr_cycles - 1)
          pr.pr_cycles wall pr.pr_bottleneck;
        let header =
          [ "arm"; "label"; "cycles"; "slack" ]
          @ (if period_ns = None then [] else [ "slack_ns" ])
          @ [ "expected"; "check" ]
        in
        Calyx_obs.Tables.add_table buf
          (header
          :: List.map
               (fun a ->
                 [
                   a.ar_path;
                   a.ar_label;
                   string_of_int a.ar_cycles;
                   string_of_int a.ar_slack;
                 ]
                 @ (match period_ns with
                   | None -> []
                   | Some p ->
                       [
                         Printf.sprintf "%.1f" (float_of_int a.ar_slack *. p);
                       ])
                 @ [
                     (match a.ar_expected with
                     | None -> "-"
                     | Some e -> string_of_int e);
                     (if a.ar_mismatch then "MISMATCH"
                      else
                        match a.ar_expected with
                        | None -> "-"
                        | Some _ -> "ok");
                   ])
               pr.pr_arms))
      reports;
    Buffer.contents buf
  end

let to_json ?period_ns reports =
  let opt_json = function None -> Json.null | Some n -> Json.int n in
  let ns cycles =
    match period_ns with
    | None -> []
    | Some p -> [ ("ns", Json.float (float_of_int cycles *. p)) ]
  in
  Json.arr
    (List.map
       (fun pr ->
         Json.obj
           ([
              ("instance", Json.str pr.pr_instance);
              ("component", Json.str pr.pr_component);
              ("path", Json.str pr.pr_path);
              ("enter", Json.int pr.pr_enter);
              ("cycles", Json.int pr.pr_cycles);
            ]
           @ ns pr.pr_cycles
           @ [
               ("bottleneck", Json.str pr.pr_bottleneck);
               ( "arms",
                 Json.arr
                   (List.map
                      (fun a ->
                        Json.obj
                          ([
                             ("path", Json.str a.ar_path);
                             ("label", Json.str a.ar_label);
                             ("cycles", Json.int a.ar_cycles);
                             ("slack", Json.int a.ar_slack);
                           ]
                          @ (match period_ns with
                            | None -> []
                            | Some p ->
                                [
                                  ( "slack_ns",
                                    Json.float
                                      (float_of_int a.ar_slack *. p) );
                                ])
                          @ [
                              ("expected", opt_json a.ar_expected);
                              ("mismatch", Json.bool a.ar_mismatch);
                            ]))
                      pr.pr_arms) );
             ]))
       reports)
