(** Register read/write sets of groups (Section 5.2).

    Conservative over-approximation as the paper requires: the read set is
    the registers a group {e may} read; the must-write set is the registers
    it {e must} write (an unconditional [write_en = 1] drive). *)

val registers : Ir.component -> Ir.String_set.t
(** Names of all [std_reg] cells of a component. *)

val reads : Ir.component -> Ir.group -> Ir.String_set.t
(** Registers whose [out] port appears in a source or guard of the group. *)

val may_writes : Ir.component -> Ir.group -> Ir.String_set.t
(** Registers whose [in] or [write_en] port is driven by the group. *)

val must_writes : Ir.component -> Ir.group -> Ir.String_set.t
(** Registers whose [write_en] the group drives unconditionally with a
    non-zero constant. *)

(** {1 Cell-granularity sets}

    Used by the par data-race lint ({!Lint}): any cell — stateful or
    combinational — touched by a group, not just registers. *)

val cell_reads : Ir.group -> Ir.String_set.t
(** Cells one of whose ports appears in a source or guard of the group. *)

val cell_writes : Ir.group -> Ir.String_set.t
(** Cells one of whose ports is driven by the group. *)
