(** Structural validation of Calyx programs.

    Checks the invariants the rest of the compiler relies on: resolvable
    names, direction-correct and width-correct assignments, groups that
    drive their own [done] hole, control programs that reference existing
    groups, valid invoke bindings (inputs {e and} outputs), readable 1-bit
    conditions, and no duplicate unconditional drivers within a group.

    Every check emits a coded {!Diagnostics.t} (codes [CX001]–[CX012], all
    [Error] severity); the string-based API below renders them for
    backwards compatibility. Semantic lints with [CX02x] codes live in
    {!Lint}. *)

exception Malformed of string list
(** All collected problems, one rendered diagnostic each. *)

val diagnostics : Ir.context -> Diagnostics.t list
(** All structural diagnostics of a program (empty when well-formed). *)

val component_diagnostics : Ir.context -> Ir.component -> Diagnostics.t list
(** Diagnostics of one component. *)

val check : Ir.context -> unit
(** Validate a whole program; raises {!Malformed} when anything is wrong. *)

val check_component : Ir.context -> Ir.component -> string list
(** Rendered problems found in one component (empty when well-formed). *)

val errors : Ir.context -> string list
(** Rendered problems in the program, without raising. *)
