open Ir

let lower_invokes (_ctx : context) comp =
  let comp_ref = ref comp in
  let control =
    map_control
      (function
        | Invoke { cell = target; invoke_inputs; invoke_outputs; invoke_attrs }
          ->
            let name = fresh_group_name !comp_ref ("invoke_" ^ target) in
            let assigns =
              List.map
                (fun (p, a) -> Builder.assign (Builder.port target p) a)
                invoke_inputs
              @ List.map
                  (fun (p, dst) ->
                    Builder.assign dst (Builder.pa target p))
                  invoke_outputs
              @ [
                  Builder.assign (Builder.port target "go") (Builder.bit true);
                  Builder.assign (Builder.hole name "done")
                    (Builder.pa target "done");
                ]
            in
            comp_ref := Ir.add_group !comp_ref (Builder.group name assigns);
            Enable (name, invoke_attrs)
        | c -> c)
      comp.control
  in
  { !comp_ref with control }

let pass =
  Pass.make ~name:"compile-invoke"
    ~description:"lower invoke statements into groups and enables"
    (Pass.per_component lower_invokes)
