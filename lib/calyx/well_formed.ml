open Ir
module D = Diagnostics

exception Malformed of string list

(* Every check emits a coded, located diagnostic; the legacy string API
   below renders them. Codes are stable (see Diagnostics.code_descriptions):
     CX001 duplicates           CX002 bad primitive      CX003 bad component
     CX004 unresolved reference CX005 direction          CX006 width
     CX007 missing done         CX008 multiple drivers   CX009 unknown group
     CX010 bad condition        CX011 bad invoke         CX012 no entrypoint *)

let component_diagnostics ctx comp =
  let acc = ref [] in
  let report sev ~code ~loc fmt =
    Format.kasprintf
      (fun message ->
        acc := { D.code; severity = sev; loc; message } :: !acc)
      fmt
  in
  let error ~code ~loc fmt = report D.Error ~code ~loc fmt in
  let comp_loc = D.Component comp.comp_name in
  let group_loc g = D.Group { comp = comp.comp_name; group = g } in
  let cell_loc c = D.Cell { comp = comp.comp_name; cell = c } in
  let assign_loc group a =
    D.Assignment
      {
        comp = comp.comp_name;
        group;
        dst = Format.asprintf "%a" pp_port_ref a.dst;
      }
  in
  let control_loc path = D.Control { comp = comp.comp_name; path } in
  let check_duplicates what names =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun n ->
        if Hashtbl.mem tbl n then
          error ~code:"CX001" ~loc:comp_loc "duplicate %s %s" what n
        else Hashtbl.add tbl n ())
      names
  in
  check_duplicates "cell" (List.map (fun c -> c.cell_name) comp.cells);
  check_duplicates "group" (List.map (fun g -> g.group_name) comp.groups);
  check_duplicates "port"
    (List.map (fun pd -> pd.pd_name) (signature_ports comp));
  (* Cells must instantiate known primitives or components. *)
  List.iter
    (fun c ->
      match c.cell_proto with
      | Prim (name, params) -> (
          match Prims.find name with
          | None ->
              error ~code:"CX002" ~loc:(cell_loc c.cell_name)
                "unknown primitive %s" name
          | Some info -> (
              try ignore (info.make_ports params)
              with Invalid_argument msg ->
                error ~code:"CX002" ~loc:(cell_loc c.cell_name) "%s" msg))
      | Comp name -> (
          match find_component_opt ctx name with
          | None ->
              error ~code:"CX003" ~loc:(cell_loc c.cell_name)
                "unknown component %s" name
          | Some sub ->
              if String.equal sub.comp_name comp.comp_name then
                error ~code:"CX003" ~loc:(cell_loc c.cell_name)
                  "recursive instantiation of %s" name))
    comp.cells;
  (* Port reference resolution + direction checks for assignments. *)
  let group_exists g = find_group_opt comp g <> None in
  let port_info ~loc p =
    (* Returns (width, is_readable, is_writable) or None with a problem. *)
    match p with
    | Hole (g, h) ->
        if not (group_exists g) then begin
          error ~code:"CX004" ~loc "reference to hole of unknown group %s" g;
          None
        end
        else if not (List.mem h [ "go"; "done" ]) then begin
          error ~code:"CX004" ~loc "unknown hole %s[%s]" g h;
          None
        end
        else Some (1, true, true)
    | This name -> (
        match
          List.find_opt
            (fun pd -> String.equal pd.pd_name name)
            (signature_ports comp)
        with
        | None ->
            error ~code:"CX004" ~loc "unknown component port %s" name;
            None
        | Some pd ->
            (* Inside the component, inputs are read and outputs written. *)
            Some (pd.pd_width, pd.pd_dir = Input, pd.pd_dir = Output))
    | Cell_port (c, p) -> (
        match find_cell_opt comp c with
        | None ->
            error ~code:"CX004" ~loc "reference to unknown cell %s" c;
            None
        | Some cell -> (
            match
              try
                List.find_opt
                  (fun (n, _, _) -> String.equal n p)
                  (cell_ports ctx cell.cell_proto)
              with Ir_error _ | Prims.Unknown_primitive _ -> None
            with
            | None ->
                error ~code:"CX004" ~loc "cell %s has no port %s" c p;
                None
            | Some (_, w, dir) ->
                (* Outputs of cells are read; inputs are written. *)
                Some (w, dir = Output, dir = Input)))
  in
  let atom_info ~loc = function
    | Port p -> port_info ~loc p
    | Lit v -> Some (Bitvec.width v, true, false)
  in
  let check_assignment group a =
    let loc = assign_loc group a in
    (match port_info ~loc a.dst with
    | Some (_, _, false) ->
        error ~code:"CX005" ~loc
          "%a is not writable (not a cell input or component output)"
          pp_port_ref a.dst
    | _ -> ());
    (match atom_info ~loc a.src with
    | Some (_, false, _) ->
        error ~code:"CX005" ~loc "%a is not readable" pp_atom a.src
    | _ -> ());
    (match (port_info ~loc a.dst, atom_info ~loc a.src) with
    | Some (dw, _, _), Some (sw, _, _) when dw <> sw ->
        error ~code:"CX006" ~loc "width mismatch in %a = %a (%d vs %d)"
          pp_port_ref a.dst pp_atom a.src dw sw
    | _ -> ());
    List.iter
      (fun atom ->
        match atom_info ~loc atom with
        | Some (_, false, _) ->
            error ~code:"CX005" ~loc "guard reads unreadable %a" pp_atom atom
        | _ -> ())
      (guard_atoms a.guard);
    let rec check_cmp_widths = function
      | True | Atom _ -> ()
      | Cmp (_, x, y) -> (
          match (atom_info ~loc x, atom_info ~loc y) with
          | Some (wx, _, _), Some (wy, _, _) when wx <> wy ->
              error ~code:"CX006" ~loc "comparison width mismatch %a vs %a"
                pp_atom x pp_atom y
          | _ -> ())
      | And (g1, g2) | Or (g1, g2) ->
          check_cmp_widths g1;
          check_cmp_widths g2
      | Not g -> check_cmp_widths g
    in
    check_cmp_widths a.guard
  in
  List.iter (check_assignment None) comp.continuous;
  List.iter
    (fun g ->
      List.iter (check_assignment (Some g.group_name)) g.assigns;
      (* Every group must signal completion (Section 3.3). *)
      let drives_done =
        List.exists
          (fun a ->
            match a.dst with
            | Hole (gr, "done") -> String.equal gr g.group_name
            | _ -> false)
          g.assigns
      in
      if not drives_done then
        error ~code:"CX007" ~loc:(group_loc g.group_name)
          "group %s does not drive its done hole" g.group_name;
      (* Unique unconditional drivers within a group. *)
      let seen = Hashtbl.create 8 in
      List.iter
        (fun a ->
          if a.guard = True then begin
            if Hashtbl.mem seen a.dst then
              error ~code:"CX008"
                ~loc:(assign_loc (Some g.group_name) a)
                "multiple unconditional drivers of %a" pp_port_ref a.dst
            else Hashtbl.add seen a.dst ()
          end)
        g.assigns)
    comp.groups;
  (* Control references. *)
  let check_cond ~loc cond_group cond_port =
    (match cond_group with
    | Some g when not (group_exists g) ->
        error ~code:"CX010" ~loc "unknown condition group %s" g
    | _ -> ());
    match port_info ~loc cond_port with
    | Some (w, _, _) when w <> 1 ->
        error ~code:"CX010" ~loc "condition port %a must be 1 bit wide, got %d"
          pp_port_ref cond_port w
    | Some (_, false, _) ->
        error ~code:"CX010" ~loc "condition port %a is not readable"
          pp_port_ref cond_port
    | _ -> ()
  in
  iter_control_path
    (fun path ctrl ->
      let loc = control_loc path in
      match ctrl with
      | Enable (g, _) ->
          if not (group_exists g) then
            error ~code:"CX009" ~loc "control enables unknown group %s" g
      | If { cond_group; cond_port; _ } -> check_cond ~loc cond_group cond_port
      | While { cond_group; cond_port; _ } ->
          check_cond ~loc cond_group cond_port
      | Invoke { cell; invoke_inputs; invoke_outputs; _ } -> (
          match find_cell_opt comp cell with
          | None -> error ~code:"CX011" ~loc "invoke of unknown cell %s" cell
          | Some c ->
              let ports =
                try cell_ports ctx c.cell_proto
                with Ir_error _ | Prims.Unknown_primitive _ -> []
              in
              let has name dir =
                List.exists
                  (fun (n, _, d) -> String.equal n name && d = dir)
                  ports
              in
              if not (has "go" Input && has "done" Output) then
                error ~code:"CX011" ~loc
                  "invoke target %s has no go/done interface" cell;
              List.iter
                (fun (p, a) ->
                  match
                    List.find_opt (fun (n, _, _) -> String.equal n p) ports
                  with
                  | None ->
                      error ~code:"CX011" ~loc "invoke of %s: no input port %s"
                        cell p
                  | Some (_, w, dir) -> (
                      if dir <> Input then
                        error ~code:"CX011" ~loc
                          "invoke of %s: %s is not an input" cell p;
                      match atom_info ~loc a with
                      | Some (aw, _, _) when aw <> w ->
                          error ~code:"CX011" ~loc
                            "invoke of %s: width mismatch on %s (%d vs %d)"
                            cell p aw w
                      | Some (_, false, _) ->
                          error ~code:"CX011" ~loc
                            "invoke of %s: %a is not readable" cell pp_atom a
                      | _ -> ()))
                invoke_inputs;
              (* Output bindings: the port must exist and be an output of
                 the invoked cell, and the destination must be a writable
                 port of matching width. *)
              List.iter
                (fun (p, dst) ->
                  match
                    List.find_opt (fun (n, _, _) -> String.equal n p) ports
                  with
                  | None ->
                      error ~code:"CX011" ~loc
                        "invoke of %s: no output port %s" cell p
                  | Some (_, w, dir) -> (
                      if dir <> Output then
                        error ~code:"CX011" ~loc
                          "invoke of %s: %s is not an output" cell p;
                      match port_info ~loc dst with
                      | Some (_, _, false) ->
                          error ~code:"CX011" ~loc
                            "invoke of %s: destination %a is not writable"
                            cell pp_port_ref dst
                      | Some (dw, _, _) when dw <> w ->
                          error ~code:"CX011" ~loc
                            "invoke of %s: width mismatch on output %s (%d \
                             vs %d)"
                            cell p w dw
                      | _ -> ()))
                invoke_outputs)
      | Empty | Seq _ | Par _ -> ())
    comp.control;
  List.rev !acc

let diagnostics ctx =
  (match find_component_opt ctx ctx.entrypoint with
  | Some _ -> []
  | None ->
      [
        D.error ~code:"CX012" ~loc:D.Program
          "entrypoint component %s not found" ctx.entrypoint;
      ])
  @ List.concat_map
      (fun c -> if c.is_extern <> None then [] else component_diagnostics ctx c)
      ctx.components

let check_component ctx comp =
  List.map D.render (component_diagnostics ctx comp)

let errors ctx = List.map D.render (diagnostics ctx)

let check ctx =
  match errors ctx with [] -> () | problems -> raise (Malformed problems)
