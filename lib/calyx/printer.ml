open Ir

let pp_attrs fmt attrs = Attrs.pp fmt attrs

let pp_port_def fmt pd =
  Format.fprintf fmt "%a%s: %d" pp_attrs pd.pd_attrs pd.pd_name pd.pd_width

let pp_port_defs fmt pds =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
    pp_port_def fmt pds

let pp_prototype fmt = function
  | Prim (name, params) ->
      Format.fprintf fmt "%s(%a)" name
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           Format.pp_print_int)
        params
  | Comp name -> Format.fprintf fmt "%s()" name

let pp_cell fmt c =
  Format.fprintf fmt "@[<h>%a%s = %a;@]" pp_attrs c.cell_attrs c.cell_name
    pp_prototype c.cell_proto

let pp_assignment fmt a =
  match a.guard with
  | True -> Format.fprintf fmt "@[<h>%a = %a;@]" pp_port_ref a.dst pp_atom a.src
  | g ->
      Format.fprintf fmt "@[<h>%a = %a ? %a;@]" pp_port_ref a.dst pp_guard g
        pp_atom a.src

let pp_group fmt g =
  Format.fprintf fmt "@[<v 2>group %s%a {@,%a@]@,}" g.group_name pp_attrs
    g.group_attrs
    (Format.pp_print_list pp_assignment)
    g.assigns

let rec pp_control fmt = function
  | Empty -> ()
  | Enable (g, attrs) -> Format.fprintf fmt "%s%a;" g pp_attrs attrs
  | Seq (cs, attrs) ->
      Format.fprintf fmt "@[<v 2>seq%a {@,%a@]@,}" pp_attrs attrs pp_children cs
  | Par (cs, attrs) ->
      Format.fprintf fmt "@[<v 2>par%a {@,%a@]@,}" pp_attrs attrs pp_children cs
  | If { cond_port; cond_group; tbranch; fbranch; if_attrs } ->
      Format.fprintf fmt "@[<v 2>if%a %a%a {@,%a@]@,}" pp_attrs if_attrs
        pp_port_ref cond_port pp_with cond_group pp_control tbranch;
      (match fbranch with
      | Empty -> ()
      | f -> Format.fprintf fmt "@[<v 2> else {@,%a@]@,}" pp_control f)
  | While { cond_port; cond_group; body; while_attrs } ->
      Format.fprintf fmt "@[<v 2>while%a %a%a {@,%a@]@,}" pp_attrs while_attrs
        pp_port_ref cond_port pp_with cond_group pp_control body
  | Invoke { cell; invoke_inputs; invoke_outputs; invoke_attrs } ->
      let pp_arg fmt (p, a) = Format.fprintf fmt "%s = %a" p pp_atom a in
      let pp_out fmt (p, dst) =
        Format.fprintf fmt "%s = %a" p pp_port_ref dst
      in
      let comma fmt () = Format.fprintf fmt ", " in
      Format.fprintf fmt "invoke%a %s(%a)" pp_attrs invoke_attrs cell
        (Format.pp_print_list ~pp_sep:comma pp_arg)
        invoke_inputs;
      if invoke_outputs <> [] then
        Format.fprintf fmt "(%a)"
          (Format.pp_print_list ~pp_sep:comma pp_out)
          invoke_outputs;
      Format.pp_print_string fmt ";"

and pp_children fmt cs =
  Format.pp_print_list pp_control fmt
    (List.filter (function Empty -> false | _ -> true) cs)

and pp_with fmt = function
  | None -> ()
  | Some g -> Format.fprintf fmt " with %s" g

let pp_component fmt c =
  match c.is_extern with
  | Some path ->
      Format.fprintf fmt "@[<v 2>extern %S {@,component %s(%a) -> (%a);@]@,}"
        path c.comp_name pp_port_defs c.inputs pp_port_defs c.outputs
  | None ->
      Format.fprintf fmt "@[<v 2>component %s%a(%a) -> (%a) {@," c.comp_name
        pp_attrs c.comp_attrs pp_port_defs c.inputs pp_port_defs c.outputs;
      Format.fprintf fmt "@[<v 2>cells {@,%a@]@,}@,"
        (Format.pp_print_list pp_cell)
        c.cells;
      Format.fprintf fmt "@[<v 2>wires {@,%a%s%a@]@,}@,"
        (Format.pp_print_list pp_group)
        c.groups
        (if c.groups <> [] && c.continuous <> [] then "\n" else "")
        (Format.pp_print_list pp_assignment)
        c.continuous;
      (match c.control with
      | Empty -> Format.fprintf fmt "control {}"
      | ctrl -> Format.fprintf fmt "@[<v 2>control {@,%a@]@,}" pp_control ctrl);
      Format.fprintf fmt "@]@,}"

let pp_context fmt ctx =
  Format.fprintf fmt "@[<v>%a@]@."
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt "@,@,")
       pp_component)
    ctx.components

let to_string ctx = Format.asprintf "%a" pp_context ctx
let component_to_string c = Format.asprintf "@[<v>%a@]@." pp_component c
