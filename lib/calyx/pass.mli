(** The pass framework: named context-to-context transformations.

    Each compiler pass is a value of type {!t}. {!run} optionally re-checks
    well-formedness after the transformation (on by default), which turns
    pass bugs into early, attributable failures; it also optionally reports
    an {!observation} per pass (wall-clock time and IR size before/after),
    the raw material of [calyx compile --pass-stats].

    Every invocation additionally opens a telemetry span (category
    ["pass"]) and bumps the process-wide [calyx_pass_invocations_total]
    counter — both free when telemetry is disabled (one branch via
    [Calyx_telemetry.Runtime.on]). *)

type t = {
  name : string;
  description : string;
  transform : Ir.context -> Ir.context;
}

val make : name:string -> description:string -> (Ir.context -> Ir.context) -> t

(** {1 Instrumentation} *)

type counts = {
  components : int;
  cells : int;
  groups : int;
  assignments : int;  (** Continuous plus grouped, over all components. *)
  control_nodes : int;  (** {!Ir.control_size}, summed. *)
}
(** The IR-size metrics recorded around every observed pass. *)

val measure : Ir.context -> counts

type observation = {
  obs_pass : string;
  obs_description : string;
  obs_seconds : float;
      (** Wall-clock seconds of the transformation itself (validation
          excluded). *)
  obs_before : counts;
  obs_after : counts;
  obs_ctx_before : Ir.context;
      (** The contexts themselves (immutable, so sharing them is free):
          observers that need more than size counts — e.g. per-pass timing
          analysis — re-measure these. *)
  obs_ctx_after : Ir.context;
}

(** {1 Running passes} *)

val run :
  ?validate:bool -> ?observe:(observation -> unit) -> t -> Ir.context ->
  Ir.context
(** Apply one pass; with [validate] (default true), raises
    [Well_formed.Malformed] annotated with the pass name if the output is
    malformed. [observe] (off by default — the uninstrumented path measures
    nothing) receives one {!observation} after the pass completes. *)

val run_all :
  ?validate:bool -> ?observe:(observation -> unit) -> t list -> Ir.context ->
  Ir.context
(** Observations arrive in pass order; consecutive observations chain
    ([obs_after] of one equals [obs_before] of the next). *)

val per_component : (Ir.context -> Ir.component -> Ir.component) -> Ir.context -> Ir.context
(** Lift a per-component rewrite over every non-extern component. The
    function receives the original (pre-pass) context for lookups. *)
