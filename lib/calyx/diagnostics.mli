(** Structured compiler diagnostics.

    Every problem the checker ({!Well_formed}) or the lint suite ({!Lint})
    reports is a {!t}: a stable code (["CX0xx"]), a severity, a location
    inside the program, and a human-readable message. Diagnostics render
    either as one-line human text ([error CX021 \[main/group g\]: ...]) or
    as JSON for machine consumption ([calyx_cli check --json]). *)

type severity = Error | Warning | Info

type location =
  | Program  (** The whole program (e.g. a missing entrypoint). *)
  | Component of string
  | Cell of { comp : string; cell : string }
  | Group of { comp : string; group : string }
  | Assignment of { comp : string; group : string option; dst : string }
      (** [group = None] means a continuous assignment. *)
  | Control of { comp : string; path : string }
      (** A control statement, addressed by a path such as
          ["seq[1].par[0]"] (empty for the root). *)

type t = {
  code : string;  (** Stable machine code, e.g. ["CX007"]. *)
  severity : severity;
  loc : location;
  message : string;
}

(** {1 Construction} *)

val diag :
  severity -> code:string -> loc:location ->
  ('a, Format.formatter, unit, t) format4 -> 'a
(** [diag sev ~code ~loc fmt ...] builds a diagnostic with a formatted
    message. *)

val error :
  code:string -> loc:location -> ('a, Format.formatter, unit, t) format4 -> 'a

val warning :
  code:string -> loc:location -> ('a, Format.formatter, unit, t) format4 -> 'a

(** {1 Inspection} *)

val is_error : t -> bool
val errors_of : t list -> t list
val count : severity -> t list -> int

val severity_string : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val compare : t -> t -> int
(** Stable presentation order: component, then code, then message. *)

(** {1 Rendering} *)

val pp_location : Format.formatter -> location -> unit
val pp : Format.formatter -> t -> unit
(** One line: [<severity> <code> [<location>]: <message>]. *)

val render : t -> string
val render_all : t list -> string
(** One diagnostic per line, in {!compare} order, with a trailing summary
    line ([N error(s), M warning(s)]) when the list is non-empty. *)

val to_json : t list -> string
(** A JSON object
    [{"diagnostics": [...], "errors": N, "warnings": N, "infos": N}]; each
    diagnostic carries [code], [severity], [message] and a [location]
    object with a [kind] discriminator. *)

(** {1 The code registry} *)

val code_descriptions : (string * string) list
(** Every stable diagnostic code with a one-line description, in code
    order — the source of truth for the README's code table. *)

val describe : string -> string option
(** Look up one code's description. *)
