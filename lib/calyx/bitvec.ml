type t = { w : int; v : int64 }

let max_width = 64

exception Width_error of string

let width_error fmt = Format.kasprintf (fun s -> raise (Width_error s)) fmt

let mask w = if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

let check_width w =
  if w < 1 || w > max_width then
    width_error "bit vector width %d out of range [1, %d]" w max_width

(* Bit vectors are immutable, so small values — the 1-bit control wires,
   done flags and little counters that dominate traffic numerically — are
   interned rather than re-allocated: a {w; boxed int64} pair costs two
   heap blocks per [make], and the simulators mint millions of them. *)
let interned =
  Array.init max_width (fun wi ->
      let w = wi + 1 in
      Array.init 256 (fun v ->
          { w; v = Int64.logand (Int64.of_int v) (mask w) }))

let make ~width v =
  check_width width;
  let v = Int64.logand v (mask width) in
  if Int64.unsigned_compare v 255L <= 0 then
    interned.(width - 1).(Int64.to_int v)
  else { w = width; v }

let of_int ~width v = make ~width (Int64.of_int v)
let zero w = make ~width:w 0L
let one w = make ~width:w 1L
let ones w = make ~width:w (-1L)
let width t = t.w
let to_int64 t = t.v

let to_int t =
  if Int64.compare t.v 0L >= 0 && Int64.compare t.v (Int64.of_int max_int) <= 0
  then Int64.to_int t.v
  else width_error "bit vector value %Lu does not fit in an OCaml int" t.v

let is_zero t = Int64.equal t.v 0L
let is_true t = not (is_zero t)
let equal a b = a == b || (a.w = b.w && Int64.equal a.v b.v)

let compare a b =
  match Int.compare a.w b.w with
  | 0 -> Int64.unsigned_compare a.v b.v
  | c -> c

let same_width op a b =
  if a.w <> b.w then
    width_error "%s: width mismatch (%d vs %d)" op a.w b.w

let binop op f a b =
  same_width op a b;
  make ~width:a.w (f a.v b.v)

let add a b = binop "add" Int64.add a b
let sub a b = binop "sub" Int64.sub a b
let mul a b = binop "mul" Int64.mul a b

let div a b =
  same_width "div" a b;
  if is_zero b then ones a.w
  else make ~width:a.w (Int64.unsigned_div a.v b.v)

let rem a b =
  same_width "rem" a b;
  if is_zero b then a
  else make ~width:a.w (Int64.unsigned_rem a.v b.v)

let logand a b = binop "and" Int64.logand a b
let logor a b = binop "or" Int64.logor a b
let logxor a b = binop "xor" Int64.logxor a b
let lognot a = make ~width:a.w (Int64.lognot a.v)

let shift_amount s =
  (* Shift amounts >= 64 would be undefined for Int64 shifts. *)
  if Int64.unsigned_compare s.v 64L >= 0 then 64 else Int64.to_int s.v

let shift_left a s =
  let n = shift_amount s in
  if n >= a.w then zero a.w else make ~width:a.w (Int64.shift_left a.v n)

let shift_right a s =
  let n = shift_amount s in
  if n >= a.w then zero a.w
  else make ~width:a.w (Int64.shift_right_logical a.v n)

let bool_bit b = if b then interned.(0).(1) else interned.(0).(0)

let cmp op f a b =
  same_width op a b;
  bool_bit (f (Int64.unsigned_compare a.v b.v) 0)

let eq a b = cmp "eq" ( = ) a b
let neq a b = cmp "neq" ( <> ) a b
let lt a b = cmp "lt" ( < ) a b
let gt a b = cmp "gt" ( > ) a b
let le a b = cmp "le" ( <= ) a b
let ge a b = cmp "ge" ( >= ) a b

let truncate t w = make ~width:w t.v

let zero_extend t w =
  if w < t.w then
    width_error "zero_extend: target width %d smaller than %d" w t.w
  else make ~width:w t.v

let concat hi lo =
  let w = hi.w + lo.w in
  check_width w;
  make ~width:w (Int64.logor (Int64.shift_left hi.v lo.w) lo.v)

let pp fmt t = Format.fprintf fmt "%d'd%Lu" t.w t.v
let to_string t = Format.asprintf "%a" pp t
