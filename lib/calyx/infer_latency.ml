open Ir

(* Latency of a cell's go/done (or write_en/done) protocol, if known. *)
let cell_latency ctx comp cell_name =
  match (find_cell comp cell_name).cell_proto with
  | Prim (name, _) -> (
      match Prims.find name with Some info -> info.latency | None -> None)
  | Comp name -> Attrs.static (find_component ctx name).comp_attrs

let is_register comp cell_name =
  match (find_cell comp cell_name).cell_proto with
  | Prim (("std_reg" | "std_mem_d1" | "std_mem_d2"), _) -> true
  | _ -> false

(* The group's sole unconditional write to its own done hole, if any. *)
let done_source group =
  let writes =
    List.filter
      (fun a ->
        match a.dst with
        | Hole (g, "done") -> String.equal g group.group_name
        | _ -> false)
      group.assigns
  in
  match writes with [ { guard = True; src; _ } ] -> Some src | _ -> None

let drives_write_en_high cell group =
  List.exists
    (fun a ->
      match (a.dst, a.guard, a.src) with
      | Cell_port (c, "write_en"), True, Lit v ->
          String.equal c cell && Bitvec.is_true v
      | _ -> false)
    group.assigns

(* Accepts the two invocation idioms: [c.go = 1] and [c.go = !c.done ? 1]. *)
let drives_go cell group =
  List.exists
    (fun a ->
      match (a.dst, a.src) with
      | Cell_port (c, "go"), Lit v when String.equal c cell && Bitvec.is_true v
        -> (
          match a.guard with
          | True -> true
          | Not (Atom (Port (Cell_port (c', "done")))) -> String.equal c' cell
          | _ -> false)
      | _ -> false)
    group.assigns

(* Register write gated by a go/done cell's completion:
   [r.write_en = c.done]. *)
let write_en_source cell group =
  List.find_map
    (fun a ->
      match (a.dst, a.guard, a.src) with
      | Cell_port (c, "write_en"), True, Port (Cell_port (c', "done"))
        when String.equal c cell ->
          Some c'
      | _ -> None)
    group.assigns

(* The latency the idiom analysis can derive for a group, ignoring any
   existing "static" annotation. Shared with the latency-contract lint so a
   user annotation can be checked against what the hardware will do. *)
let derived_group_latency ctx comp group =
  match done_source group with
  | Some (Lit v) when Bitvec.is_true v -> Some 1
  | Some (Port (Cell_port (c, "done"))) -> (
      if is_register comp c then
        if drives_write_en_high c group then Some 1
        else begin
          (* r.write_en = c'.done; c' invoked within the group. *)
          match write_en_source c group with
          | Some c' when drives_go c' group -> (
              match cell_latency ctx comp c' with
              | Some l -> Some (l + 1)
              | None -> None)
          | _ -> None
        end
      else
        match cell_latency ctx comp c with
        | Some l when drives_go c group -> Some l
        | _ -> None)
  | _ -> None

let infer_group ctx comp group =
  match Attrs.static group.group_attrs with
  | Some _ -> (group, false)
  | None -> (
      match derived_group_latency ctx comp group with
      | Some n ->
          ( { group with group_attrs = Attrs.with_static n group.group_attrs },
            true )
      | None -> (group, false))

let infer_component ctx comp =
  let changed = ref false in
  let groups =
    List.map
      (fun g ->
        let g', c = infer_group ctx comp g in
        if c then changed := true;
        g')
      comp.groups
  in
  let comp = { comp with groups } in
  let comp =
    if Attrs.static comp.comp_attrs <> None || comp.control = Empty then comp
    else
      match Static_timing.control_latency comp comp.control with
      | Some n ->
          changed := true;
          { comp with comp_attrs = Attrs.with_static n comp.comp_attrs }
      | None -> comp
  in
  (comp, !changed)

let infer ctx =
  (* Iterate so latencies propagate bottom-up through component
     instantiations. *)
  let rec go ctx iterations =
    let changed = ref false in
    let components =
      List.map
        (fun c ->
          if c.is_extern <> None then c
          else begin
            let c', ch = infer_component ctx c in
            if ch then changed := true;
            c'
          end)
        ctx.components
    in
    let ctx = { ctx with components } in
    if !changed && iterations < 16 then go ctx (iterations + 1) else ctx
  in
  go ctx 0

let pass =
  Pass.make ~name:"infer-latency"
    ~description:"infer static latencies for simple groups and components"
    infer
