type direction = Input | Output

type port_def = {
  pd_name : string;
  pd_width : int;
  pd_dir : direction;
  pd_attrs : Attrs.t;
}

type prototype = Prim of string * int list | Comp of string

type cell = { cell_name : string; cell_proto : prototype; cell_attrs : Attrs.t }

type port_ref =
  | Cell_port of string * string
  | Hole of string * string
  | This of string

type atom = Port of port_ref | Lit of Bitvec.t

type cmp_op = Eq | Neq | Lt | Gt | Le | Ge

type guard =
  | True
  | Atom of atom
  | Cmp of cmp_op * atom * atom
  | And of guard * guard
  | Or of guard * guard
  | Not of guard

type assignment = { dst : port_ref; src : atom; guard : guard }

type group = {
  group_name : string;
  group_attrs : Attrs.t;
  assigns : assignment list;
}

type control =
  | Empty
  | Enable of string * Attrs.t
  | Seq of control list * Attrs.t
  | Par of control list * Attrs.t
  | If of {
      cond_port : port_ref;
      cond_group : string option;
      tbranch : control;
      fbranch : control;
      if_attrs : Attrs.t;
    }
  | While of {
      cond_port : port_ref;
      cond_group : string option;
      body : control;
      while_attrs : Attrs.t;
    }
  | Invoke of {
      cell : string;
      invoke_inputs : (string * atom) list;
      invoke_outputs : (string * port_ref) list;
          (* Output bindings: cell output port -> destination port. *)
      invoke_attrs : Attrs.t;
    }

type component = {
  comp_name : string;
  inputs : port_def list;
  outputs : port_def list;
  cells : cell list;
  groups : group list;
  continuous : assignment list;
  control : control;
  comp_attrs : Attrs.t;
  is_extern : string option;
}

type context = { components : component list; entrypoint : string }

exception Ir_error of string

let ir_error fmt = Format.kasprintf (fun s -> raise (Ir_error s)) fmt

(* Lookup *)

let find_component_opt ctx name =
  List.find_opt (fun c -> String.equal c.comp_name name) ctx.components

let find_component ctx name =
  match find_component_opt ctx name with
  | Some c -> c
  | None -> ir_error "unknown component %s" name

let entry ctx = find_component ctx ctx.entrypoint

let find_cell_opt comp name =
  List.find_opt (fun c -> String.equal c.cell_name name) comp.cells

let find_cell comp name =
  match find_cell_opt comp name with
  | Some c -> c
  | None -> ir_error "unknown cell %s in component %s" name comp.comp_name

let find_group_opt comp name =
  List.find_opt (fun g -> String.equal g.group_name name) comp.groups

let find_group comp name =
  match find_group_opt comp name with
  | Some g -> g
  | None -> ir_error "unknown group %s in component %s" name comp.comp_name

let signature_ports comp = comp.inputs @ comp.outputs

let update_component ctx comp =
  let found = ref false in
  let components =
    List.map
      (fun c ->
        if String.equal c.comp_name comp.comp_name then begin
          found := true;
          comp
        end
        else c)
      ctx.components
  in
  if not !found then ir_error "update_component: no component %s" comp.comp_name;
  { ctx with components }

let add_component ctx comp =
  if find_component_opt ctx comp.comp_name <> None then
    ir_error "component %s already exists" comp.comp_name;
  { ctx with components = ctx.components @ [ comp ] }

(* Widths *)

let cell_ports ctx proto =
  match proto with
  | Prim (name, params) ->
      List.map
        (fun (p : Prims.prim_port) ->
          ( p.pp_name,
            p.pp_width,
            match p.pp_dir with Prims.In -> Input | Prims.Out -> Output ))
        (Prims.ports name params)
  | Comp name ->
      let c = find_component ctx name in
      List.map
        (fun pd -> (pd.pd_name, pd.pd_width, pd.pd_dir))
        (signature_ports c)

let cell_port_width ctx comp cell port =
  let c = find_cell comp cell in
  match
    List.find_opt (fun (n, _, _) -> String.equal n port)
      (cell_ports ctx c.cell_proto)
  with
  | Some (_, w, _) -> w
  | None ->
      ir_error "cell %s (in %s) has no port %s" cell comp.comp_name port

let port_ref_width ctx comp = function
  | Cell_port (c, p) -> cell_port_width ctx comp c p
  | Hole (_, _) -> 1
  | This p -> (
      match
        List.find_opt
          (fun pd -> String.equal pd.pd_name p)
          (signature_ports comp)
      with
      | Some pd -> pd.pd_width
      | None -> ir_error "component %s has no port %s" comp.comp_name p)

let atom_width ctx comp = function
  | Port p -> port_ref_width ctx comp p
  | Lit v -> Bitvec.width v

(* Construction *)

let fresh_name ~taken base =
  if not (taken base) then base
  else
    let rec go i =
      let candidate = base ^ string_of_int i in
      if taken candidate then go (i + 1) else candidate
    in
    go 0

let fresh_cell_name comp base =
  fresh_name ~taken:(fun n -> find_cell_opt comp n <> None) base

let fresh_group_name comp base =
  fresh_name ~taken:(fun n -> find_group_opt comp n <> None) base

let add_cell comp cell =
  if find_cell_opt comp cell.cell_name <> None then
    ir_error "cell %s already exists in %s" cell.cell_name comp.comp_name;
  { comp with cells = comp.cells @ [ cell ] }

let add_cells comp cells = List.fold_left add_cell comp cells

let add_group comp group =
  if find_group_opt comp group.group_name <> None then
    ir_error "group %s already exists in %s" group.group_name comp.comp_name;
  { comp with groups = comp.groups @ [ group ] }

let remove_group comp name =
  {
    comp with
    groups =
      List.filter (fun g -> not (String.equal g.group_name name)) comp.groups;
  }

(* Traversal *)

let rec guard_atoms = function
  | True -> []
  | Atom a -> [ a ]
  | Cmp (_, a, b) -> [ a; b ]
  | And (g1, g2) | Or (g1, g2) -> guard_atoms g1 @ guard_atoms g2
  | Not g -> guard_atoms g

let assignment_atoms a = a.src :: guard_atoms a.guard

let rec map_guard_atoms f = function
  | True -> True
  | Atom a -> Atom (f a)
  | Cmp (op, a, b) -> Cmp (op, f a, f b)
  | And (g1, g2) -> And (map_guard_atoms f g1, map_guard_atoms f g2)
  | Or (g1, g2) -> Or (map_guard_atoms f g1, map_guard_atoms f g2)
  | Not g -> Not (map_guard_atoms f g)

let map_atom_ports f = function Port p -> Port (f p) | Lit _ as a -> a

let map_assignment_ports f a =
  {
    dst = f a.dst;
    src = map_atom_ports f a.src;
    guard = map_guard_atoms (map_atom_ports f) a.guard;
  }

let map_assignments f comp =
  {
    comp with
    continuous = List.map f comp.continuous;
    groups =
      List.map (fun g -> { g with assigns = List.map f g.assigns }) comp.groups;
  }

let all_assignments comp =
  comp.continuous @ List.concat_map (fun g -> g.assigns) comp.groups

let rec map_control f ctrl =
  let ctrl' =
    match ctrl with
    | Empty | Enable _ | Invoke _ -> ctrl
    | Seq (cs, a) -> Seq (List.map (map_control f) cs, a)
    | Par (cs, a) -> Par (List.map (map_control f) cs, a)
    | If r ->
        If
          {
            r with
            tbranch = map_control f r.tbranch;
            fbranch = map_control f r.fbranch;
          }
    | While r -> While { r with body = map_control f r.body }
  in
  f ctrl'

let rec iter_control f ctrl =
  f ctrl;
  match ctrl with
  | Empty | Enable _ | Invoke _ -> ()
  | Seq (cs, _) | Par (cs, _) -> List.iter (iter_control f) cs
  | If r ->
      iter_control f r.tbranch;
      iter_control f r.fbranch
  | While r -> iter_control f r.body

(* Like [iter_control], but hands each statement its path from the root
   (e.g. "seq[1].par[0]"; the root's path is ""), for diagnostics that
   address a control statement. *)
let iter_control_path f ctrl =
  let join p q = if String.equal p "" then q else p ^ "." ^ q in
  let rec go path c =
    f path c;
    match c with
    | Empty | Enable _ | Invoke _ -> ()
    | Seq (cs, _) ->
        List.iteri
          (fun i c -> go (join path (Printf.sprintf "seq[%d]" i)) c)
          cs
    | Par (cs, _) ->
        List.iteri
          (fun i c -> go (join path (Printf.sprintf "par[%d]" i)) c)
          cs
    | If r ->
        go (join path "if.then") r.tbranch;
        go (join path "if.else") r.fbranch
    | While r -> go (join path "while.body") r.body
  in
  go "" ctrl

(* The canonical control-node numbering: non-Empty statements in pre-order
   (children left to right; an if visits then before else). The simulator
   mirrors this numbering when it annotates a component's control program,
   so span and branch events can be joined back to paths and labels. *)
let control_preorder ctrl =
  let next = ref 0 in
  let acc = ref [] in
  iter_control_path
    (fun path c ->
      match c with
      | Empty -> ()
      | _ ->
          let id = !next in
          incr next;
          acc := (id, path, c) :: !acc)
    ctrl;
  List.rev !acc

let control_node_label = function
  | Empty -> "empty"
  | Enable (g, _) -> "enable " ^ g
  | Seq _ -> "seq"
  | Par _ -> "par"
  | If _ -> "if"
  | While _ -> "while"
  | Invoke { cell; _ } -> "invoke " ^ cell

let enabled_groups ctrl =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let record name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      order := name :: !order
    end
  in
  iter_control
    (function
      | Enable (g, _) -> record g
      | If { cond_group = Some g; _ } | While { cond_group = Some g; _ } ->
          record g
      | _ -> ())
    ctrl;
  List.rev !order

let control_size ctrl =
  let n = ref 0 in
  iter_control (function Empty -> () | _ -> incr n) ctrl;
  !n

let rename_enables f ctrl =
  map_control
    (function
      | Enable (g, a) -> Enable (f g, a)
      | If ({ cond_group = Some g; _ } as r) ->
          If { r with cond_group = Some (f g) }
      | While ({ cond_group = Some g; _ } as r) ->
          While { r with cond_group = Some (f g) }
      | c -> c)
    ctrl

(* Equality and printing *)

let equal_port_ref a b =
  match (a, b) with
  | Cell_port (c1, p1), Cell_port (c2, p2) ->
      String.equal c1 c2 && String.equal p1 p2
  | Hole (g1, h1), Hole (g2, h2) -> String.equal g1 g2 && String.equal h1 h2
  | This p1, This p2 -> String.equal p1 p2
  | (Cell_port _ | Hole _ | This _), _ -> false

let compare_port_ref a b = compare a b

let equal_atom a b =
  match (a, b) with
  | Port p1, Port p2 -> equal_port_ref p1 p2
  | Lit v1, Lit v2 -> Bitvec.equal v1 v2
  | (Port _ | Lit _), _ -> false

let rec equal_guard a b =
  match (a, b) with
  | True, True -> true
  | Atom x, Atom y -> equal_atom x y
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) ->
      o1 = o2 && equal_atom a1 a2 && equal_atom b1 b2
  | And (x1, y1), And (x2, y2) | Or (x1, y1), Or (x2, y2) ->
      equal_guard x1 x2 && equal_guard y1 y2
  | Not x, Not y -> equal_guard x y
  | (True | Atom _ | Cmp _ | And _ | Or _ | Not _), _ -> false

let equal_assignment a b =
  equal_port_ref a.dst b.dst && equal_atom a.src b.src
  && equal_guard a.guard b.guard

let pp_port_ref fmt = function
  | Cell_port (c, p) -> Format.fprintf fmt "%s.%s" c p
  | Hole (g, h) -> Format.fprintf fmt "%s[%s]" g h
  | This p -> Format.pp_print_string fmt p

let pp_atom fmt = function
  | Port p -> pp_port_ref fmt p
  | Lit v -> Bitvec.pp fmt v

let cmp_symbol = function
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="

let rec pp_guard fmt = function
  | True -> Format.pp_print_string fmt "1'd1"
  | Atom a -> pp_atom fmt a
  | Cmp (op, a, b) ->
      Format.fprintf fmt "%a %s %a" pp_atom a (cmp_symbol op) pp_atom b
  | And (g1, g2) ->
      Format.fprintf fmt "(%a & %a)" pp_guard g1 pp_guard g2
  | Or (g1, g2) -> Format.fprintf fmt "(%a | %a)" pp_guard g1 pp_guard g2
  | Not g -> Format.fprintf fmt "!%a" pp_guard g

module Port_ref_ord = struct
  type t = port_ref

  let compare = compare_port_ref
end

module Port_ref_set = Set.Make (Port_ref_ord)
module Port_ref_map = Map.Make (Port_ref_ord)
module String_set = Set.Make (String)
module String_map = Map.Make (String)

(* Guard simplification: boolean identities to keep generated guards small.
   [Not True] serves as the canonical "false". *)
let rec simplify_guard g =
  match g with
  | True | Atom _ | Cmp _ -> g
  | And (a, b) -> (
      match (simplify_guard a, simplify_guard b) with
      | True, x | x, True -> x
      | Not True, _ | _, Not True -> Not True
      | a', b' -> And (a', b'))
  | Or (a, b) -> (
      match (simplify_guard a, simplify_guard b) with
      | Not True, x | x, Not True -> x
      | True, _ | _, True -> True
      | a', b' -> Or (a', b'))
  | Not a -> (
      match simplify_guard a with
      | Not x -> x
      | a' -> Not a')

let guard_size g =
  let rec go acc = function
    | True -> acc
    | Atom _ -> acc + 1
    | Cmp (_, _, _) -> acc + 2
    | And (a, b) | Or (a, b) -> go (go (acc + 1) a) b
    | Not a -> go (acc + 1) a
  in
  go 0 g
