type t = {
  name : string;
  description : string;
  transform : Ir.context -> Ir.context;
}

let make ~name ~description transform = { name; description; transform }

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

type counts = {
  components : int;
  cells : int;
  groups : int;
  assignments : int;
  control_nodes : int;
}

let measure (ctx : Ir.context) =
  List.fold_left
    (fun acc (c : Ir.component) ->
      {
        components = acc.components + 1;
        cells = acc.cells + List.length c.Ir.cells;
        groups = acc.groups + List.length c.Ir.groups;
        assignments =
          acc.assignments + List.length (Ir.all_assignments c);
        control_nodes = acc.control_nodes + Ir.control_size c.Ir.control;
      })
    { components = 0; cells = 0; groups = 0; assignments = 0; control_nodes = 0 }
    ctx.Ir.components

type observation = {
  obs_pass : string;
  obs_description : string;
  obs_seconds : float;
  obs_before : counts;
  obs_after : counts;
  obs_ctx_before : Ir.context;
  obs_ctx_after : Ir.context;
}

let validate_after pass ctx' =
  match Well_formed.errors ctx' with
  | [] -> ()
  | errors ->
      raise
        (Well_formed.Malformed
           (List.map (fun e -> Printf.sprintf "[after %s] %s" pass.name e) errors))

let invocations =
  Calyx_telemetry.Metrics.counter
    ~help:"Compiler pass invocations across the process"
    "calyx_pass_invocations_total"

let run ?(validate = true) ?observe pass ctx =
  Calyx_telemetry.Metrics.inc invocations;
  Calyx_telemetry.Trace.with_span ~cat:"pass" pass.name @@ fun () ->
  match observe with
  | None ->
      let ctx' = pass.transform ctx in
      if validate then validate_after pass ctx';
      ctx'
  | Some notify ->
      let before = measure ctx in
      let ctx', seconds =
        Calyx_telemetry.Clock.timed (fun () -> pass.transform ctx)
      in
      if validate then validate_after pass ctx';
      notify
        {
          obs_pass = pass.name;
          obs_description = pass.description;
          obs_seconds = seconds;
          obs_before = before;
          obs_after = measure ctx';
          obs_ctx_before = ctx;
          obs_ctx_after = ctx';
        };
      ctx'

let run_all ?validate ?observe passes ctx =
  List.fold_left (fun ctx pass -> run ?validate ?observe pass ctx) ctx passes

let per_component f (ctx : Ir.context) =
  {
    ctx with
    Ir.components =
      List.map
        (fun c -> if c.Ir.is_extern <> None then c else f ctx c)
        ctx.Ir.components;
  }
