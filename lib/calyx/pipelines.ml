module Tele = Calyx_telemetry

type config = {
  infer_latency : bool;
  resource_sharing : bool;
  register_sharing : bool;
  static_timing : bool;
  lint : bool;
}

let default_config =
  {
    infer_latency = true;
    resource_sharing = true;
    register_sharing = true;
    static_timing = true;
    lint = true;
  }

let insensitive_config =
  {
    infer_latency = false;
    resource_sharing = false;
    register_sharing = false;
    static_timing = false;
    lint = true;
  }

let optimize config =
  List.concat
    [
      [ Compile_invoke.pass ];
      (if config.infer_latency then [ Infer_latency.pass ] else []);
      (if config.resource_sharing then [ Resource_sharing.pass ] else []);
      (if config.register_sharing then [ Register_sharing.pass ] else []);
    ]

let lower config =
  List.concat
    [
      [ Go_insertion.pass ];
      (if config.static_timing then [ Static_timing.pass ] else []);
      [ Compile_control.pass; Remove_groups.pass; Dead_cell_removal.pass ];
    ]

let passes config = optimize config @ lower config

(* The pass pipeline id: the run-manifest (and future compile-cache) key
   component identifying *which* compiler ran. The readable pass list is
   hashed so the id stays short and stable under pass renames-with-intent
   (any change to the pass sequence changes the id). *)
let description config =
  String.concat "|" (List.map (fun (p : Pass.t) -> p.Pass.name) (passes config))

let id config = Tele.Manifest.hash (description config)

let programs_compiled =
  Tele.Metrics.counter ~help:"Programs taken through the full pass pipeline"
    "calyx_programs_compiled_total"

let compile ?(config = default_config) ?observe ctx =
  Tele.Metrics.inc programs_compiled;
  if Tele.Runtime.on () then Tele.Manifest.set_run ~pipeline:(id config) ();
  Tele.Trace.with_span ~cat:"stage" "compile" @@ fun () ->
  Tele.Log.debug "compile: pipeline %s (%s)" (id config) (description config);
  Tele.Trace.with_span ~cat:"stage" "check" (fun () -> Well_formed.check ctx);
  if config.lint then
    Tele.Trace.with_span ~cat:"stage" "lint" (fun () -> Lint.check ctx);
  Pass.run_all ?observe (passes config) ctx
