type config = {
  infer_latency : bool;
  resource_sharing : bool;
  register_sharing : bool;
  static_timing : bool;
  lint : bool;
}

let default_config =
  {
    infer_latency = true;
    resource_sharing = true;
    register_sharing = true;
    static_timing = true;
    lint = true;
  }

let insensitive_config =
  {
    infer_latency = false;
    resource_sharing = false;
    register_sharing = false;
    static_timing = false;
    lint = true;
  }

let optimize config =
  List.concat
    [
      [ Compile_invoke.pass ];
      (if config.infer_latency then [ Infer_latency.pass ] else []);
      (if config.resource_sharing then [ Resource_sharing.pass ] else []);
      (if config.register_sharing then [ Register_sharing.pass ] else []);
    ]

let lower config =
  List.concat
    [
      [ Go_insertion.pass ];
      (if config.static_timing then [ Static_timing.pass ] else []);
      [ Compile_control.pass; Remove_groups.pass; Dead_cell_removal.pass ];
    ]

let passes config = optimize config @ lower config

let compile ?(config = default_config) ?observe ctx =
  Well_formed.check ctx;
  if config.lint then Lint.check ctx;
  Pass.run_all ?observe (passes config) ctx
