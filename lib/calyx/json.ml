(* The JSON implementation moved into calyx_telemetry (the base layer —
   manifests and metrics need it below calyx in the dependency order);
   re-exported here so every existing Calyx.Json user is unaffected. *)
include Calyx_telemetry.Json
