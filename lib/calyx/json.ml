let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""
let int = string_of_int
let bool b = if b then "true" else "false"
let null = "null"

let float f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> null
  | _ ->
      (* %h-style shortest form would not be JSON; %.17g always
         round-trips but is noisy, so try shorter forms first. *)
      let exact p = Printf.sprintf "%.*g" p f in
      let rec shortest p =
        if p >= 17 then exact 17
        else
          let s = exact p in
          if float_of_string s = f then s else shortest (p + 1)
      in
      shortest 6

let obj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields)
  ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"
