open Ir
module SS = String_set

type result = {
  live_in : SS.t;
  conflict_cliques : SS.t list;
}

let analyze comp =
  let regs = Read_write_set.registers comp in
  let group g = find_group comp g in
  let reads_tbl = Hashtbl.create 16 in
  let reads g =
    match Hashtbl.find_opt reads_tbl g with
    | Some s -> s
    | None ->
        let s = Read_write_set.reads comp (group g) in
        Hashtbl.replace reads_tbl g s;
        s
  in
  let memo tbl f g =
    match Hashtbl.find_opt tbl g with
    | Some s -> s
    | None ->
        let s = f comp (group g) in
        Hashtbl.replace tbl g s;
        s
  in
  let must_tbl = Hashtbl.create 16 and may_tbl = Hashtbl.create 16 in
  let must_writes g = memo must_tbl Read_write_set.must_writes g in
  let may_writes g = memo may_tbl Read_write_set.may_writes g in
  (* Registers read from continuous assignments are observable at any time
     (e.g. they feed output ports); they interfere with everything. *)
  let always_live =
    List.fold_left
      (fun acc a ->
        List.fold_left
          (fun acc atom ->
            match atom with
            | Port (Cell_port (c, _)) when SS.mem c regs -> SS.add c acc
            | _ -> acc)
          acc (a.src :: guard_atoms a.guard))
      SS.empty comp.continuous
  in
  let cliques = ref [] in
  let seen_cliques = Hashtbl.create 64 in
  let clique s =
    if SS.cardinal s > 1 then begin
      (* Live sets repeat heavily across groups; deduplicate. *)
      let k = String.concat "\x00" (SS.elements s) in
      if not (Hashtbl.mem seen_cliques k) then begin
        Hashtbl.replace seen_cliques k ();
        cliques := s :: !cliques
      end
    end
  in
  (* Touched registers of a subtree (for parallel interference). *)
  let touched_tbl = Hashtbl.create 64 in
  let touched ctrl =
    let groups = Schedule_conflicts.subtree_groups ctrl in
    let k = String.concat "\x00" (SS.elements groups) in
    match Hashtbl.find_opt touched_tbl k with
    | Some s -> s
    | None ->
        let s =
          SS.fold
            (fun g acc -> SS.union acc (SS.union (reads g) (may_writes g)))
            groups SS.empty
        in
        Hashtbl.replace touched_tbl k s;
        s
  in
  let visit_group g live_after =
    let live_in = SS.union (reads g) (SS.diff live_after (must_writes g)) in
    (* At this node, everything written interferes with everything live
       across or out of the node. *)
    clique (SS.union (SS.union live_in (may_writes g)) always_live);
    live_in
  in
  let rec flow ctrl live_after =
    match ctrl with
    | Empty -> live_after
    | Invoke { invoke_inputs; invoke_outputs; _ } ->
        (* Reads its argument registers; writes the invoked cell and any
           registers bound as output destinations. *)
        let read =
          List.fold_left
            (fun acc (_, a) ->
              match a with
              | Port (Cell_port (c, "out")) when SS.mem c regs -> SS.add c acc
              | _ -> acc)
            SS.empty invoke_inputs
        in
        let written =
          List.fold_left
            (fun acc (_, dst) ->
              match dst with
              | Cell_port (c, _) when SS.mem c regs -> SS.add c acc
              | _ -> acc)
            SS.empty invoke_outputs
        in
        (* Conservative: output writes are not treated as must-writes (no
           kill), but they interfere with everything live across the call. *)
        let live_in = SS.union read live_after in
        clique (SS.union (SS.union live_in written) always_live);
        live_in
    | Enable (g, _) -> visit_group g live_after
    | Seq (cs, _) -> List.fold_right flow cs live_after
    | Par (cs, _) ->
        (* Each child sees the liveness leaving the par (writes in one child
           are visible after the block; Section 5.2). *)
        let ins = List.map (fun c -> flow c live_after) cs in
        let rec cross = function
          | [] -> ()
          | c :: rest ->
              let tc = touched c in
              List.iter (fun c' -> clique (SS.union tc (touched c'))) rest;
              cross rest
        in
        cross cs;
        List.fold_left SS.union live_after ins
    | If { cond_group; tbranch; fbranch; _ } ->
        let lt = flow tbranch live_after in
        let lf = flow fbranch live_after in
        let l = SS.union lt lf in
        (match cond_group with Some cg -> visit_group cg l | None -> l)
    | While { cond_group; body; _ } ->
        (* live_in = reads(cond) ∪ live_after ∪ live_in(body applied to
           live_in) — iterate to a fixpoint. *)
        let rec iterate current =
          let body_in = flow body current in
          let next =
            let l = SS.union live_after body_in in
            match cond_group with Some cg -> visit_group cg l | None -> l
          in
          if SS.equal next current then next else iterate (SS.union next current)
        in
        iterate
          (match cond_group with
          | Some cg -> SS.union (reads cg) live_after
          | None -> live_after)
  in
  let live_in = flow comp.control always_live in
  { live_in; conflict_cliques = !cliques }
