open Ir

exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

type state = { mutable tokens : Lexer.token list }

let peek st = match st.tokens with [] -> Lexer.EOF | t :: _ -> t

let next st =
  match st.tokens with
  | [] -> Lexer.EOF
  | t :: rest ->
      st.tokens <- rest;
      t

let expect st tok =
  let got = next st in
  if got <> tok then
    parse_error "expected %s but found %s" (Lexer.token_to_string tok)
      (Lexer.token_to_string got)

let expect_ident st =
  match next st with
  | Lexer.IDENT s -> s
  | t -> parse_error "expected an identifier but found %s" (Lexer.token_to_string t)

let expect_number st =
  match next st with
  | Lexer.NUMBER v -> v
  | t -> parse_error "expected a number but found %s" (Lexer.token_to_string t)

let expect_string st =
  match next st with
  | Lexer.STRING s -> s
  | t -> parse_error "expected a string but found %s" (Lexer.token_to_string t)

let expect_keyword st kw =
  match next st with
  | Lexer.IDENT s when String.equal s kw -> ()
  | t -> parse_error "expected %S but found %s" kw (Lexer.token_to_string t)

let accept st tok =
  if peek st = tok then begin
    ignore (next st);
    true
  end
  else false

let accept_keyword st kw =
  match peek st with
  | Lexer.IDENT s when String.equal s kw ->
      ignore (next st);
      true
  | _ -> false

(* <"key"=value, ...> *)
let parse_attrs st =
  if accept st Lexer.LANGLE then begin
    let rec go acc =
      let key = expect_string st in
      expect st Lexer.EQ;
      let value = expect_number st in
      let acc = Attrs.add key value acc in
      if accept st Lexer.COMMA then go acc
      else begin
        expect st Lexer.RANGLE;
        acc
      end
    in
    go Attrs.empty
  end
  else Attrs.empty

(* ident | ident.port | ident[hole] *)
let parse_port_ref st =
  let base = expect_ident st in
  if accept st Lexer.DOT then Cell_port (base, expect_ident st)
  else if accept st Lexer.LBRACKET then begin
    let hole = expect_ident st in
    expect st Lexer.RBRACKET;
    Hole (base, hole)
  end
  else This base

let parse_atom st =
  match peek st with
  | Lexer.LIT v ->
      ignore (next st);
      Lit v
  | Lexer.NUMBER _ ->
      parse_error "bare numbers are not atoms; use a sized literal like 32'd5"
  | _ -> Port (parse_port_ref st)

(* Guards: ! binds tightest, then comparisons, then &, then |. *)
let rec parse_guard st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept st Lexer.PIPE then Or (lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept st Lexer.AMP then And (lhs, parse_and st) else lhs

and parse_not st =
  if accept st Lexer.BANG then Not (parse_not st) else parse_cmp st

and parse_cmp st =
  if accept st Lexer.LPAREN then begin
    let g = parse_guard st in
    expect st Lexer.RPAREN;
    g
  end
  else
    let lhs = parse_atom st in
    let cmp op =
      ignore (next st);
      Cmp (op, lhs, parse_atom st)
    in
    match peek st with
    | Lexer.EQEQ -> cmp Eq
    | Lexer.NEQ -> cmp Neq
    | Lexer.LANGLE -> cmp Lt
    | Lexer.RANGLE -> cmp Gt
    | Lexer.LE -> cmp Le
    | Lexer.GE -> cmp Ge
    | _ -> Atom lhs

let guard_as_atom = function
  | Atom a -> a
  | g -> parse_error "expected an atom but found guard %a" Ir.pp_guard g

(* dst = src; | dst = guard ? src; *)
let parse_assignment st =
  let dst = parse_port_ref st in
  expect st Lexer.EQ;
  let e = parse_guard st in
  let assignment =
    if accept st Lexer.QUESTION then
      let src = parse_atom st in
      { dst; src; guard = e }
    else { dst; src = guard_as_atom e; guard = True }
  in
  expect st Lexer.SEMI;
  assignment

let parse_group st =
  (* The [group] keyword has already been consumed. *)
  let name = expect_ident st in
  let attrs = parse_attrs st in
  expect st Lexer.LBRACE;
  let rec go acc =
    if accept st Lexer.RBRACE then List.rev acc
    else go (parse_assignment st :: acc)
  in
  { group_name = name; group_attrs = attrs; assigns = go [] }

let parse_wires st =
  expect_keyword st "wires";
  expect st Lexer.LBRACE;
  let rec go groups continuous =
    if accept st Lexer.RBRACE then (List.rev groups, List.rev continuous)
    else if accept_keyword st "group" then
      go (parse_group st :: groups) continuous
    else go groups (parse_assignment st :: continuous)
  in
  go [] []

let parse_cells st =
  expect_keyword st "cells";
  expect st Lexer.LBRACE;
  let rec go acc =
    if accept st Lexer.RBRACE then List.rev acc
    else begin
      let attrs = parse_attrs st in
      let name = expect_ident st in
      expect st Lexer.EQ;
      let proto_name = expect_ident st in
      expect st Lexer.LPAREN;
      let rec params acc =
        match peek st with
        | Lexer.RPAREN ->
            ignore (next st);
            List.rev acc
        | _ ->
            let v = expect_number st in
            if accept st Lexer.COMMA then params (v :: acc)
            else begin
              expect st Lexer.RPAREN;
              List.rev (v :: acc)
            end
      in
      let ps = params [] in
      expect st Lexer.SEMI;
      let proto =
        if Prims.find proto_name <> None then Prim (proto_name, ps)
        else if ps = [] then Comp proto_name
        else
          parse_error "unknown primitive %s (user components take no parameters)"
            proto_name
      in
      go ({ cell_name = name; cell_proto = proto; cell_attrs = attrs } :: acc)
    end
  in
  go []

let rec parse_control st =
  let attrs_after kw =
    ignore kw;
    parse_attrs st
  in
  if accept_keyword st "seq" then begin
    let attrs = attrs_after "seq" in
    expect st Lexer.LBRACE;
    Seq (parse_block st, attrs)
  end
  else if accept_keyword st "par" then begin
    let attrs = attrs_after "par" in
    expect st Lexer.LBRACE;
    Par (parse_block st, attrs)
  end
  else if accept_keyword st "if" then begin
    let attrs = attrs_after "if" in
    let cond_port = parse_port_ref st in
    let cond_group =
      if accept_keyword st "with" then Some (expect_ident st) else None
    in
    expect st Lexer.LBRACE;
    let tbranch = parse_stmts st in
    let fbranch =
      if accept_keyword st "else" then begin
        expect st Lexer.LBRACE;
        parse_stmts st
      end
      else Empty
    in
    If { cond_port; cond_group; tbranch; fbranch; if_attrs = attrs }
  end
  else if accept_keyword st "invoke" then begin
    let attrs = parse_attrs st in
    let cell = expect_ident st in
    expect st Lexer.LPAREN;
    let rec args acc =
      match peek st with
      | Lexer.RPAREN ->
          ignore (next st);
          List.rev acc
      | _ ->
          let p = expect_ident st in
          expect st Lexer.EQ;
          let a = parse_atom st in
          if accept st Lexer.COMMA then args ((p, a) :: acc)
          else begin
            expect st Lexer.RPAREN;
            List.rev ((p, a) :: acc)
          end
    in
    let invoke_inputs = args [] in
    (* Optional second binding list: output port -> destination port. *)
    let invoke_outputs =
      if accept st Lexer.LPAREN then begin
        let rec outs acc =
          match peek st with
          | Lexer.RPAREN ->
              ignore (next st);
              List.rev acc
          | _ ->
              let p = expect_ident st in
              expect st Lexer.EQ;
              let dst = parse_port_ref st in
              if accept st Lexer.COMMA then outs ((p, dst) :: acc)
              else begin
                expect st Lexer.RPAREN;
                List.rev ((p, dst) :: acc)
              end
        in
        outs []
      end
      else []
    in
    ignore (accept st Lexer.SEMI);
    Invoke { cell; invoke_inputs; invoke_outputs; invoke_attrs = attrs }
  end
  else if accept_keyword st "while" then begin
    let attrs = attrs_after "while" in
    let cond_port = parse_port_ref st in
    let cond_group =
      if accept_keyword st "with" then Some (expect_ident st) else None
    in
    expect st Lexer.LBRACE;
    let body = parse_stmts st in
    While { cond_port; cond_group; body; while_attrs = attrs }
  end
  else begin
    let name = expect_ident st in
    let attrs = parse_attrs st in
    let c = Enable (name, attrs) in
    ignore (accept st Lexer.SEMI);
    c
  end

(* Statements up to a closing brace; one statement stays bare, several
   become an implicit seq. *)
and parse_stmts st =
  match parse_block st with
  | [] -> Empty
  | [ c ] -> c
  | cs -> Seq (cs, Attrs.empty)

and parse_block st =
  let rec go acc =
    if accept st Lexer.RBRACE then List.rev acc
    else begin
      let c = parse_control st in
      ignore (accept st Lexer.SEMI);
      go (c :: acc)
    end
  in
  go []

let parse_port_defs st dir =
  expect st Lexer.LPAREN;
  let rec go acc =
    match peek st with
    | Lexer.RPAREN ->
        ignore (next st);
        List.rev acc
    | _ ->
        let attrs = parse_attrs st in
        let name = expect_ident st in
        expect st Lexer.COLON;
        let width = expect_number st in
        let pd = { pd_name = name; pd_width = width; pd_dir = dir; pd_attrs = attrs } in
        if accept st Lexer.COMMA then go (pd :: acc)
        else begin
          expect st Lexer.RPAREN;
          List.rev (pd :: acc)
        end
  in
  go []

let interface_attrs inputs outputs =
  (* Tag the calling-convention ports so later passes can find them even in
     hand-written sources that omit the attributes. *)
  let tag key pd =
    if String.equal pd.pd_name key && not (Attrs.mem key pd.pd_attrs) then
      { pd with pd_attrs = Attrs.add key 1 pd.pd_attrs }
    else pd
  in
  (List.map (tag "go") inputs, List.map (tag "done") outputs)

let parse_signature st =
  let name = expect_ident st in
  let attrs = parse_attrs st in
  let inputs = parse_port_defs st Input in
  expect st Lexer.ARROW;
  let outputs = parse_port_defs st Output in
  let inputs, outputs = interface_attrs inputs outputs in
  (name, attrs, inputs, outputs)

let parse_component st =
  expect_keyword st "component";
  let name, attrs, inputs, outputs = parse_signature st in
  expect st Lexer.LBRACE;
  let cells = parse_cells st in
  let groups, continuous = parse_wires st in
  expect_keyword st "control";
  expect st Lexer.LBRACE;
  let control = parse_stmts st in
  expect st Lexer.RBRACE;
  {
    comp_name = name;
    inputs;
    outputs;
    cells;
    groups;
    continuous;
    control;
    comp_attrs = attrs;
    is_extern = None;
  }

let parse_extern st =
  let path = expect_string st in
  expect st Lexer.LBRACE;
  let rec go acc =
    if accept st Lexer.RBRACE then List.rev acc
    else begin
      expect_keyword st "component";
      let name, attrs, inputs, outputs = parse_signature st in
      expect st Lexer.SEMI;
      let comp =
        {
          comp_name = name;
          inputs;
          outputs;
          cells = [];
          groups = [];
          continuous = [];
          control = Empty;
          comp_attrs = attrs;
          is_extern = Some path;
        }
      in
      go (comp :: acc)
    end
  in
  go []

let parse_context st entrypoint =
  let rec go acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | Lexer.IDENT "extern" ->
        ignore (next st);
        go (List.rev_append (parse_extern st) acc)
    | Lexer.IDENT "import" ->
        (* import "path"; is accepted and ignored (we have no file system
           search path; the standard library is built in). *)
        ignore (next st);
        ignore (expect_string st);
        ignore (accept st Lexer.SEMI);
        go acc
    | _ -> go (parse_component st :: acc)
  in
  { components = go []; entrypoint }

let parse_string ?(entrypoint = "main") src =
  let st = { tokens = Lexer.tokenize src } in
  parse_context st entrypoint

let parse_file ?entrypoint path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string ?entrypoint src
