(** Control-flow-sensitive semantic lints.

    Where {!Well_formed} checks structural invariants (codes [CX001]–
    [CX012]), this module checks semantic safety properties the paper
    leaves implicit, reporting {!Diagnostics.t} values with [CX02x] codes:

    - {b CX020 par data race} (error): groups enabled under distinct arms
      of a [par] may run in the same cycle ({!Schedule_conflicts}); if both
      write one cell, or one drives a combinational cell whose output the
      other reads ({!Read_write_set}), the result is schedule-dependent —
      undefined behaviour the paper's register-sharing analysis assumes
      away without verifying. Reading a {e stateful} cell another arm
      writes is fine: its outputs hold last cycle's value (the systolic
      shift idiom).
    - {b CX021 combinational cycle} (error): a port depends combinationally
      on itself through assignments and combinational primitives, so the
      simulator's fixpoint evaluation cannot settle.
    - {b CX022 overlapping guarded drivers} (warning): a port has several
      drivers whose guards are not provably mutually exclusive (syntactic
      [g] vs [!g], distinct equality comparisons on one port, complementary
      comparisons), including drivers split across a group and continuous
      assignments. Upgrades {!Well_formed}'s unconditional-only CX008.
    - {b CX023 dead group} (warning): a group no control path can reach.
    - {b CX024 dead cell} (warning): a cell never referenced by any
      assignment or control statement.
    - {b CX025 latency contract violation} (error): a ["static"] attribute
      disagrees with the latency {!Infer_latency}/{!Static_timing} derive,
      so latency-sensitive compilation would produce wrong hardware. *)

exception Rejected of Diagnostics.t list
(** Raised by {!check}: the error-severity lint diagnostics. *)

val component_diagnostics : Ir.context -> Ir.component -> Diagnostics.t list
(** All lint diagnostics of one component. *)

val diagnostics : Ir.context -> Diagnostics.t list
(** All lint diagnostics of a program (extern components are skipped).
    The program should already be well-formed; unresolvable references are
    ignored here, not reported twice. *)

val check : Ir.context -> unit
(** Run all lints; raises {!Rejected} when any {e error}-severity
    diagnostic is found. Warnings never raise. Run by {!Pipelines.compile}
    before optimization unless the [lint] config flag is off. *)
