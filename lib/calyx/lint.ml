open Ir
module D = Diagnostics
module SS = String_set

exception Rejected of D.t list

let port_key p = Format.asprintf "%a" pp_port_ref p

(* ------------------------------------------------------------------ *)
(* CX020: par data races                                               *)
(* ------------------------------------------------------------------ *)

(* Two groups enabled under distinct arms of the same [par] may be active
   in the same cycle. If both drive a cell, or one drives a cell the other
   reads, the outcome depends on the schedule — undefined behaviour. *)
let par_races comp =
  let diags = ref [] in
  let memo tbl f g =
    match Hashtbl.find_opt tbl g with
    | Some s -> s
    | None ->
        let s =
          match find_group_opt comp g with Some gr -> f gr | None -> SS.empty
        in
        Hashtbl.replace tbl g s;
        s
  in
  let reads_tbl = Hashtbl.create 16 and writes_tbl = Hashtbl.create 16 in
  let reads g = memo reads_tbl Read_write_set.cell_reads g in
  let writes g = memo writes_tbl Read_write_set.cell_writes g in
  (* Stateful cells (registers, memories, pipelined units, subcomponents)
     expose last cycle's value on their outputs, so a concurrent
     read+write is the well-defined shift idiom systolic arrays rely on;
     only write/write is a race there. Combinational outputs reflect this
     cycle's inputs, so cross-arm read+write is schedule-dependent. *)
  let is_stateful c =
    match find_cell_opt comp c with
    | Some { cell_proto = Prim (name, _); _ } -> (
        match Prims.find name with
        | Some i -> not i.combinational
        | None -> true)
    | Some { cell_proto = Comp _; _ } | None -> true
  in
  let reported = Hashtbl.create 16 in
  let report ~path fmt =
    Format.kasprintf
      (fun message ->
        if not (Hashtbl.mem reported message) then begin
          Hashtbl.replace reported message ();
          diags :=
            {
              D.code = "CX020";
              severity = D.Error;
              loc = D.Control { comp = comp.comp_name; path };
              message;
            }
            :: !diags
        end)
      fmt
  in
  iter_control_path
    (fun path ctrl ->
      match ctrl with
      | Par (children, _) ->
          let sets = List.map Schedule_conflicts.subtree_groups children in
          let pair ga gb =
            if String.equal ga gb then begin
              if not (SS.is_empty (writes ga)) then
                report ~path
                  "group %s is enabled in two parallel arms and writes cell \
                   %s"
                  ga
                  (SS.min_elt (writes ga))
            end
            else begin
              SS.iter
                (fun cell ->
                  report ~path
                    "parallel arms race on cell %s: groups %s and %s both \
                     write it"
                    cell ga gb)
                (SS.inter (writes ga) (writes gb));
              let read_write gw gr =
                SS.iter
                  (fun cell ->
                    if not (is_stateful cell) then
                      report ~path
                        "parallel arms race on cell %s: group %s drives it \
                         while group %s reads its combinational output"
                        cell gw gr)
                  (SS.inter (writes gw) (reads gr))
              in
              read_write ga gb;
              read_write gb ga
            end
          in
          let rec cross = function
            | [] -> ()
            | s :: rest ->
                List.iter
                  (fun s' -> SS.iter (fun ga -> SS.iter (pair ga) s') s)
                  rest;
                cross rest
          in
          cross sets
      | _ -> ())
    comp.control;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* CX021: combinational cycles                                         *)
(* ------------------------------------------------------------------ *)

(* The combinational input -> output dependencies of one cell's ports.
   Registers and pipelined units break cycles (their outputs change only at
   clock edges); memories have a combinational read path from the address
   ports to [read_data]; user components are treated as opaque. *)
let cell_comb_deps comp cell_name =
  match find_cell_opt comp cell_name with
  | None -> None
  | Some c -> (
      match c.cell_proto with
      | Comp _ -> None
      | Prim (name, params) -> (
          match Prims.find name with
          | None -> None
          | Some info -> (
              let ports = try info.make_ports params with _ -> [] in
              let dir d =
                List.filter_map
                  (fun (p : Prims.prim_port) ->
                    if p.pp_dir = d then Some p.pp_name else None)
                  ports
              in
              if info.combinational then Some (dir Prims.In, dir Prims.Out)
              else
                match name with
                | "std_mem_d1" | "std_mem_d2" ->
                    Some
                      ( List.filter
                          (fun p ->
                            String.length p >= 4
                            && String.equal (String.sub p 0 4) "addr")
                          (dir Prims.In),
                        [ "read_data" ] )
                | _ -> None)))

(* Find combinational cycles in one evaluation scope (the assignments that
   can be live in the same cycle: one group plus the continuous
   assignments). Returns each cycle as a port list, deduplicated across
   scopes via [seen]. *)
let scope_cycles comp ~seen assigns =
  let succ : (string, string list ref) Hashtbl.t = Hashtbl.create 64 in
  let edge a b =
    match Hashtbl.find_opt succ a with
    | Some l -> if not (List.mem b !l) then l := b :: !l
    | None -> Hashtbl.replace succ a (ref [ b ])
  in
  let cells = ref SS.empty in
  let note_port p =
    match p with Cell_port (c, _) -> cells := SS.add c !cells | _ -> ()
  in
  List.iter
    (fun a ->
      note_port a.dst;
      List.iter
        (function
          | Port p ->
              note_port p;
              edge (port_key p) (port_key a.dst)
          | Lit _ -> ())
        (assignment_atoms a))
    assigns;
  SS.iter
    (fun c ->
      match cell_comb_deps comp c with
      | Some (ins, outs) ->
          List.iter
            (fun i ->
              List.iter
                (fun o ->
                  edge (port_key (Cell_port (c, i)))
                    (port_key (Cell_port (c, o))))
                outs)
            ins
      | None -> ())
    !cells;
  let state = Hashtbl.create 64 in
  let cycles = ref [] in
  let rec dfs path node =
    match Hashtbl.find_opt state node with
    | Some `Done -> ()
    | Some `Active ->
        (* [path] runs from the current node back to the root; the cycle is
           the prefix up to (and including) the first occurrence of
           [node]. *)
        let rec take acc = function
          | [] -> List.rev acc
          | n :: rest ->
              if String.equal n node then List.rev (n :: acc)
              else take (n :: acc) rest
        in
        let cycle = take [] path in
        let key = String.concat "\x00" (List.sort String.compare cycle) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          cycles := cycle :: !cycles
        end
    | None ->
        Hashtbl.replace state node `Active;
        (match Hashtbl.find_opt succ node with
        | Some l -> List.iter (dfs (node :: path)) !l
        | None -> ());
        Hashtbl.replace state node `Done
  in
  Hashtbl.iter (fun node _ -> dfs [ node ] node) succ;
  List.rev !cycles

let comb_cycles comp =
  let seen = Hashtbl.create 16 in
  let diag loc cycle =
    {
      D.code = "CX021";
      severity = D.Error;
      loc;
      message =
        Printf.sprintf "combinational cycle: %s"
          (String.concat " -> " (cycle @ [ List.hd cycle ]));
    }
  in
  let continuous =
    List.map
      (fun c -> diag (D.Component comp.comp_name) c)
      (scope_cycles comp ~seen comp.continuous)
  in
  let grouped =
    List.concat_map
      (fun g ->
        List.map
          (fun c ->
            diag (D.Group { comp = comp.comp_name; group = g.group_name }) c)
          (scope_cycles comp ~seen (g.assigns @ comp.continuous)))
      comp.groups
  in
  continuous @ grouped

(* ------------------------------------------------------------------ *)
(* CX022: overlapping guarded drivers                                  *)
(* ------------------------------------------------------------------ *)

(* Mutual-exclusion analysis over guards. Guards are expanded through
   generated 1-bit wires (whose value is exactly the disjunction of their
   drivers' guards when every driver drives constant 1), normalized to
   DNF, and two guards are disjoint when every pair of satisfiable
   disjuncts contains complementary literals: [g] vs [!g], distinct
   equality constants on one port, or complementary comparisons on the
   same operands. Conservative: anything unprovable counts as
   overlapping. *)

let is_one_bit_wire comp c =
  match find_cell_opt comp c with
  | Some { cell_proto = Prim ("std_wire", [ 1 ]); _ } -> true
  | _ -> false

(* wire name -> disjunction of its drivers' guards, when exact. *)
let wire_table comp =
  let drivers = Hashtbl.create 16 in
  List.iter
    (fun a ->
      match a.dst with
      | Cell_port (w, "in") when is_one_bit_wire comp w ->
          let prev =
            match Hashtbl.find_opt drivers w with Some l -> l | None -> []
          in
          Hashtbl.replace drivers w (a :: prev)
      | _ -> ())
    (all_assignments comp);
  let table = Hashtbl.create 16 in
  Hashtbl.iter
    (fun w assigns ->
      let exact =
        List.for_all
          (fun a ->
            match a.src with Lit v -> Bitvec.is_true v | _ -> false)
          assigns
      in
      if exact then
        let disjunction =
          List.fold_left
            (fun acc a ->
              match acc with None -> Some a.guard | Some g -> Some (Or (g, a.guard)))
            None assigns
        in
        match disjunction with
        | Some g -> Hashtbl.replace table w g
        | None -> ())
    drivers;
  table

let rec expand_guard table depth g =
  if depth = 0 then g
  else
    match g with
    | True -> True
    | Atom (Port (Cell_port (w, "out"))) as a -> (
        match Hashtbl.find_opt table w with
        | Some def -> expand_guard table (depth - 1) def
        | None -> a)
    | Atom _ | Cmp _ -> g
    | And (a, b) ->
        And (expand_guard table depth a, expand_guard table depth b)
    | Or (a, b) -> Or (expand_guard table depth a, expand_guard table depth b)
    | Not a -> Not (expand_guard table depth a)

type lit = { pos : bool; base : guard }

let max_disjuncts = 48

(* DNF as a list of conjuncts (lit lists); None when the expansion blows
   the size cap (then nothing is provable). *)
let dnf guard =
  let rec go pos g =
    match g with
    | True -> if pos then Some [ [] ] else Some []
    | Atom _ | Cmp _ -> Some [ [ { pos; base = g } ] ]
    | Not g -> go (not pos) g
    | And (a, b) -> if pos then cross a b pos else union a b pos
    | Or (a, b) -> if pos then union a b pos else cross a b pos
  and union a b pos =
    match (go pos a, go pos b) with
    | Some da, Some db ->
        let d = da @ db in
        if List.length d > max_disjuncts then None else Some d
    | _ -> None
  and cross a b pos =
    match (go pos a, go pos b) with
    | Some da, Some db ->
        let d =
          List.concat_map (fun ca -> List.map (fun cb -> ca @ cb) db) da
        in
        if List.length d > max_disjuncts then None else Some d
    | _ -> None
  in
  go true guard

(* Normalize a comparison so a literal operand sits on the right. *)
let flip_op = function
  | Eq -> Eq
  | Neq -> Neq
  | Lt -> Gt
  | Gt -> Lt
  | Le -> Ge
  | Ge -> Le

let norm_cmp op a b =
  match (a, b) with Lit _, Port _ -> (flip_op op, b, a) | _ -> (op, a, b)

let complementary_ops o1 o2 =
  match (o1, o2) with
  | Eq, Neq | Neq, Eq | Lt, Ge | Ge, Lt | Gt, Le | Le, Gt -> true
  | _ -> false

let lits_complementary l1 l2 =
  (l1.pos <> l2.pos && equal_guard l1.base l2.base)
  ||
  match (l1.base, l2.base) with
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) when l1.pos && l2.pos -> (
      let o1, a1, b1 = norm_cmp o1 a1 b1 in
      let o2, a2, b2 = norm_cmp o2 a2 b2 in
      equal_atom a1 a2
      &&
      (* Distinct equality constants on the same atom can't hold at once;
         complementary operators on identical operands can't either. *)
      match (o1, o2, b1, b2) with
      | Eq, Eq, Lit v1, Lit v2 -> not (Bitvec.equal v1 v2)
      | _ -> complementary_ops o1 o2 && equal_atom b1 b2)
  | _ -> false

(* A literal that is false on its own (e.g. a positive constant 0). *)
let lit_false l =
  match l.base with
  | Atom (Lit v) -> if l.pos then not (Bitvec.is_true v) else Bitvec.is_true v
  | _ -> false

let conjunct_sat c =
  (not (List.exists lit_false c))
  && not
       (List.exists
          (fun l1 -> List.exists (fun l2 -> lits_complementary l1 l2) c)
          c)

let guards_disjoint g1 g2 =
  match (dnf g1, dnf g2) with
  | Some d1, Some d2 ->
      let d1 = List.filter conjunct_sat d1
      and d2 = List.filter conjunct_sat d2 in
      List.for_all
        (fun c1 ->
          List.for_all
            (fun c2 ->
              List.exists
                (fun l1 -> List.exists (lits_complementary l1) c2)
                c1)
            d2)
        d1
  | _ -> false

let overlapping_drivers comp =
  let table = wire_table comp in
  let expand g = expand_guard table 4 (simplify_guard g) in
  let diags = ref [] in
  let scope ~loc ~in_scope assigns =
    (* Drivers per destination; [in_scope] marks the assignments whose
       conflicts this scope is responsible for reporting (group scopes skip
       continuous-vs-continuous pairs, reported once per component). *)
    let by_dst = Hashtbl.create 16 in
    List.iter
      (fun (a, own) ->
        let k = port_key a.dst in
        let prev =
          match Hashtbl.find_opt by_dst k with Some l -> l | None -> []
        in
        Hashtbl.replace by_dst k ((a, own) :: prev))
      (List.map (fun a -> (a, in_scope a)) assigns);
    Hashtbl.iter
      (fun dst drivers ->
        let rec pairs = function
          | [] -> ()
          | (a1, own1) :: rest ->
              List.iter
                (fun (a2, own2) ->
                  if
                    (own1 || own2)
                    (* Both-unconditional pairs are CX008 errors. *)
                    && not (a1.guard = True && a2.guard = True)
                    && not (guards_disjoint (expand a1.guard) (expand a2.guard))
                  then
                    diags :=
                      D.warning ~code:"CX022" ~loc
                        "port %s has multiple drivers whose guards are not \
                         provably exclusive: [%a] vs [%a]"
                        dst pp_guard a1.guard pp_guard a2.guard
                      :: !diags)
                rest;
              pairs rest
        in
        pairs drivers)
      by_dst
  in
  scope
    ~loc:(D.Component comp.comp_name)
    ~in_scope:(fun _ -> true)
    comp.continuous;
  List.iter
    (fun g ->
      let mine a = List.exists (fun a' -> a' == a) g.assigns in
      scope
        ~loc:(D.Group { comp = comp.comp_name; group = g.group_name })
        ~in_scope:mine
        (g.assigns @ comp.continuous))
    comp.groups;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* CX023 / CX024: dead groups and dead cells                           *)
(* ------------------------------------------------------------------ *)

let dead_code comp =
  let diags = ref [] in
  (* A group is live when the control program can reach it, or when some
     assignment references its holes (intermediate forms generated by the
     static-timing pass drive children's holes directly). *)
  let live_groups = ref (SS.of_list (enabled_groups comp.control)) in
  let scan assigns =
    List.iter
      (fun a ->
        let note = function
          | Port (Hole (g, _)) -> live_groups := SS.add g !live_groups
          | _ -> ()
        in
        (match a.dst with
        | Hole (g, _) -> live_groups := SS.add g !live_groups
        | _ -> ());
        List.iter note (assignment_atoms a))
      assigns
  in
  (* Liveness flows through hole references (the static-timing pass makes
     parent groups drive their children's holes), so iterate to a
     fixpoint. *)
  scan comp.continuous;
  let rec grow () =
    let before = SS.cardinal !live_groups in
    List.iter
      (fun g -> if SS.mem g.group_name !live_groups then scan g.assigns)
      comp.groups;
    if SS.cardinal !live_groups > before then grow ()
  in
  grow ();
  List.iter
    (fun g ->
      if not (SS.mem g.group_name !live_groups) then
        diags :=
          D.warning ~code:"CX023"
            ~loc:(D.Group { comp = comp.comp_name; group = g.group_name })
            "group %s is never reachable from the control program"
            g.group_name
          :: !diags)
    comp.groups;
  (* Cells: mirror Dead_cell_removal's liveness notion at lint time. *)
  let used = Hashtbl.create 32 in
  let mark = function
    | Cell_port (c, _) -> Hashtbl.replace used c ()
    | Hole _ | This _ -> ()
  in
  let mark_atom = function Port p -> mark p | Lit _ -> () in
  List.iter
    (fun a ->
      mark a.dst;
      List.iter mark_atom (assignment_atoms a))
    (all_assignments comp);
  iter_control
    (function
      | If { cond_port; _ } | While { cond_port; _ } -> mark cond_port
      | Invoke { cell; invoke_inputs; invoke_outputs; _ } ->
          Hashtbl.replace used cell ();
          List.iter (fun (_, a) -> mark_atom a) invoke_inputs;
          List.iter (fun (_, dst) -> mark dst) invoke_outputs
      | Empty | Enable _ | Seq _ | Par _ -> ())
    comp.control;
  List.iter
    (fun c ->
      if
        (not (Hashtbl.mem used c.cell_name))
        && not (Attrs.external_mem c.cell_attrs)
      then
        diags :=
          D.warning ~code:"CX024"
            ~loc:(D.Cell { comp = comp.comp_name; cell = c.cell_name })
            "cell %s is never referenced by any assignment or control \
             statement"
            c.cell_name
          :: !diags)
    comp.cells;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* CX025: latency contracts                                            *)
(* ------------------------------------------------------------------ *)

let latency_contracts ctx comp =
  let diags = ref [] in
  List.iter
    (fun g ->
      match
        (Attrs.static g.group_attrs, Infer_latency.derived_group_latency ctx comp g)
      with
      | Some annotated, Some derived when annotated <> derived ->
          diags :=
            D.error ~code:"CX025"
              ~loc:(D.Group { comp = comp.comp_name; group = g.group_name })
              "group %s is annotated \"static\"=%d but its derived latency \
               is %d cycle(s); latency-sensitive compilation would \
               mis-schedule it"
              g.group_name annotated derived
            :: !diags
      | _ -> ())
    comp.groups;
  (match (Attrs.static comp.comp_attrs, comp.control) with
  | Some annotated, ctrl when ctrl <> Empty -> (
      match Static_timing.control_latency comp ctrl with
      | Some derived when derived <> annotated ->
          diags :=
            D.error ~code:"CX025" ~loc:(D.Component comp.comp_name)
              "component %s is annotated \"static\"=%d but its control \
               program takes %d cycle(s)"
              comp.comp_name annotated derived
            :: !diags
      | _ -> ())
  | _ -> ());
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let component_diagnostics ctx comp =
  par_races comp @ comb_cycles comp @ overlapping_drivers comp
  @ dead_code comp @ latency_contracts ctx comp

let diagnostics ctx =
  List.concat_map
    (fun c -> if c.is_extern <> None then [] else component_diagnostics ctx c)
    ctx.components

let check ctx =
  match D.errors_of (diagnostics ctx) with
  | [] -> ()
  | errs -> raise (Rejected errs)
