(** Minimal JSON emission helpers.

    The repository deliberately carries no JSON dependency; every machine
    output ({!Diagnostics.to_json}, the pass-statistics and profile reports
    of [calyx_obs], the benchmark results file) is assembled from these
    combinators. Values are pre-serialized fragments ([string]s containing
    valid JSON), composed bottom-up. *)

val escape : string -> string
(** Backslash-escape a string body (no surrounding quotes). *)

val str : string -> string
(** A JSON string literal, quoted and escaped. *)

val int : int -> string
val bool : bool -> string
val null : string

val float : float -> string
(** Shortest round-trippable decimal; non-finite values emit [null]
    (JSON has no representation for them). *)

val obj : (string * string) list -> string
(** An object from (key, serialized value) pairs, in the given order. *)

val arr : string list -> string
(** An array of serialized values. *)
