(** JSON emission and parsing, re-exported from {!Calyx_telemetry.Json}
    (the implementation lives in the telemetry base layer so manifests and
    metrics can use it without depending on calyx). The types are equal:
    [Calyx.Json.value = Calyx_telemetry.Json.value]. *)

include module type of struct
  include Calyx_telemetry.Json
end
