open Ir

let port cell p = Cell_port (cell, p)
let hole group h = Hole (group, h)
let this p = This p
let pa cell p = Port (port cell p)
let ha group h = Port (hole group h)
let thisa p = Port (this p)
let lit ~width v = Lit (Bitvec.of_int ~width v)
let bit b = Lit (if b then Bitvec.one 1 else Bitvec.zero 1)
let g_port cell p = Atom (pa cell p)
let g_hole group h = Atom (ha group h)
let g_this p = Atom (thisa p)

let g_and a b =
  match (a, b) with True, g | g, True -> g | _ -> And (a, b)

let g_or a b = Or (a, b)
let g_not g = Not g
let g_eq a b = Cmp (Eq, a, b)
let g_neq a b = Cmp (Neq, a, b)
let g_lt a b = Cmp (Lt, a, b)
let g_ge a b = Cmp (Ge, a, b)
let g_and_all gs = List.fold_left g_and True gs
let assign ?(guard = True) dst src = { dst; src; guard }

let group ?(attrs = Attrs.empty) name assigns =
  { group_name = name; group_attrs = attrs; assigns }

let static_group latency name assigns =
  group ~attrs:(Attrs.with_static latency Attrs.empty) name assigns

let cell ?(attrs = Attrs.empty) name proto =
  { cell_name = name; cell_proto = proto; cell_attrs = attrs }

let prim ?attrs name prim_name params = cell ?attrs name (Prim (prim_name, params))
let instance ?attrs name comp = cell ?attrs name (Comp comp)
let reg name w = prim name "std_reg" [ w ]

let add_over name w =
  prim ~attrs:(Attrs.of_list [ ("share", 1) ]) name "std_add" [ w ]

let mem_d1 ?(external_ = false) name ~width ~size ~idx =
  let attrs = if external_ then Attrs.of_list [ ("external", 1) ] else Attrs.empty in
  prim ~attrs name "std_mem_d1" [ width; size; idx ]

let enable ?(attrs = Attrs.empty) g = Enable (g, attrs)
let seq ?(attrs = Attrs.empty) cs = Seq (cs, attrs)
let par ?(attrs = Attrs.empty) cs = Par (cs, attrs)

let if_ ?(attrs = Attrs.empty) ?cond cond_port tbranch fbranch =
  If { cond_port; cond_group = cond; tbranch; fbranch; if_attrs = attrs }

let while_ ?(attrs = Attrs.empty) ?cond cond_port body =
  While { cond_port; cond_group = cond; body; while_attrs = attrs }

let invoke ?(attrs = Attrs.empty) ?(outputs = []) cell inputs =
  Invoke
    { cell; invoke_inputs = inputs; invoke_outputs = outputs;
      invoke_attrs = attrs }

let io_port ?(attrs = Attrs.empty) dir name width =
  { pd_name = name; pd_width = width; pd_dir = dir; pd_attrs = attrs }

let component ?(attrs = Attrs.empty) ?(inputs = []) ?(outputs = []) name =
  let has ports n = List.exists (fun (p, _) -> String.equal p n) ports in
  let inputs =
    List.map (fun (n, w) -> io_port Input n w) inputs
    @
    if has inputs "go" then []
    else [ io_port ~attrs:(Attrs.of_list [ ("go", 1) ]) Input "go" 1 ]
  in
  let outputs =
    List.map (fun (n, w) -> io_port Output n w) outputs
    @
    if has outputs "done" then []
    else [ io_port ~attrs:(Attrs.of_list [ ("done", 1) ]) Output "done" 1 ]
  in
  {
    comp_name = name;
    inputs;
    outputs;
    cells = [];
    groups = [];
    continuous = [];
    control = Empty;
    comp_attrs = attrs;
    is_extern = None;
  }

let with_cells cells comp = Ir.add_cells comp cells
let with_groups groups comp = List.fold_left Ir.add_group comp groups
let with_continuous assigns comp = { comp with continuous = comp.continuous @ assigns }
let with_control control comp = { comp with control }

let context ?(entrypoint = "main") components = { components; entrypoint }
