(** Convenience constructors for Calyx IR.

    Frontends (the systolic generator, the Dahlia backend) and tests build
    programs through this module rather than assembling records by hand. All
    functions are pure; a component is threaded through the construction. *)

open Ir

(** {1 Ports and atoms} *)

val port : string -> string -> port_ref
(** [port cell p] is [cell.p]. *)

val hole : string -> string -> port_ref
(** [hole group h] is [group[h]]; [h] is ["go"] or ["done"]. *)

val this : string -> port_ref
(** A port of the enclosing component. *)

val pa : string -> string -> atom
(** [pa cell p] is the atom reading [cell.p]. *)

val ha : string -> string -> atom
val thisa : string -> atom
val lit : width:int -> int -> atom
(** An integer literal of the given width. *)

val bit : bool -> atom
(** A 1-bit constant. *)

(** {1 Guards} *)

val g_port : string -> string -> guard
(** Truthiness of [cell.port]. *)

val g_hole : string -> string -> guard
val g_this : string -> guard
val g_and : guard -> guard -> guard
(** Conjunction, simplifying [True] operands. *)

val g_or : guard -> guard -> guard
val g_not : guard -> guard
val g_eq : atom -> atom -> guard
val g_neq : atom -> atom -> guard
val g_lt : atom -> atom -> guard
val g_ge : atom -> atom -> guard
val g_and_all : guard list -> guard

(** {1 Assignments and groups} *)

val assign : ?guard:guard -> port_ref -> atom -> assignment
val group : ?attrs:Attrs.t -> string -> assignment list -> group
val static_group : int -> string -> assignment list -> group
(** A group carrying a ["static"] latency attribute. *)

(** {1 Cells} *)

val cell : ?attrs:Attrs.t -> string -> prototype -> cell
val prim : ?attrs:Attrs.t -> string -> string -> int list -> cell
(** [prim name "std_add" [32]] instantiates a primitive. *)

val instance : ?attrs:Attrs.t -> string -> string -> cell
(** [instance name comp] instantiates a user-defined component. *)

val reg : string -> int -> cell
(** [reg name w] is a [std_reg(w)]. *)

val add_over : string -> int -> cell
(** A shareable [std_add(w)] (carries ["share"=1]). *)

val mem_d1 : ?external_:bool -> string -> width:int -> size:int -> idx:int -> cell

(** {1 Control} *)

val enable : ?attrs:Attrs.t -> string -> control
val seq : ?attrs:Attrs.t -> control list -> control
val par : ?attrs:Attrs.t -> control list -> control
val if_ :
  ?attrs:Attrs.t ->
  ?cond:string ->
  port_ref ->
  control ->
  control ->
  control
(** [if_ ~cond:g p t f] is [if p with g { t } else { f }]. *)

val while_ : ?attrs:Attrs.t -> ?cond:string -> port_ref -> control -> control

val invoke :
  ?attrs:Attrs.t ->
  ?outputs:(string * port_ref) list ->
  string ->
  (string * atom) list ->
  control
(** [invoke cell [(port, atom); ...]]: run a go/done cell to completion
    with the given input drivers (lowered by [Compile_invoke]). The
    optional [outputs] bind cell output ports to destination ports, wired
    for the duration of the invoke: [invoke ~outputs:[("out", dst)] ...]
    drives [dst = cell.out]. *)

(** {1 Components} *)

val io_port : ?attrs:Attrs.t -> direction -> string -> int -> port_def

val component :
  ?attrs:Attrs.t ->
  ?inputs:(string * int) list ->
  ?outputs:(string * int) list ->
  string ->
  component
(** A new empty component. The calling-convention ports [go : 1] (input,
    attribute ["go"=1]) and [done : 1] (output, attribute ["done"=1]) are
    appended automatically unless ports of those names are supplied. *)

val with_cells : cell list -> component -> component
val with_groups : group list -> component -> component
val with_continuous : assignment list -> component -> component
val with_control : control -> component -> component

val context : ?entrypoint:string -> component list -> context
(** A program; the entrypoint defaults to ["main"]. *)
