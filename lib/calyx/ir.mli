(** The Calyx intermediate language (Section 3 of the paper).

    A Calyx program ({!context}) is a set of {!component}s. Each component
    instantiates sub-components ({!cell}s), connects their ports with guarded
    {!assignment}s — either grouped into named {!group}s or continuous — and
    orchestrates the groups with a {!control} program.

    Every component implicitly carries the interface ports of the calling
    convention (Section 4.1): a 1-bit [go] input and a 1-bit [done] output.
    The {!Builder} module inserts them automatically. *)

type direction = Input | Output

type port_def = {
  pd_name : string;
  pd_width : int;
  pd_dir : direction;
  pd_attrs : Attrs.t;
}
(** A port in a component signature. *)

(** What a cell instantiates. *)
type prototype =
  | Prim of string * int list
      (** A standard primitive with its integer parameters,
          e.g. [Prim ("std_add", [32])]. *)
  | Comp of string  (** A user-defined component, by name. *)

type cell = {
  cell_name : string;
  cell_proto : prototype;
  cell_attrs : Attrs.t;
}

(** A reference to a port. *)
type port_ref =
  | Cell_port of string * string  (** [c.p] — port [p] of cell [c]. *)
  | Hole of string * string
      (** [g[h]] — interface hole [h] (["go"] or ["done"]) of group [g]. *)
  | This of string  (** A port of the enclosing component. *)

(** The leaves of guards and the sources of assignments. *)
type atom = Port of port_ref | Lit of Bitvec.t

type cmp_op = Eq | Neq | Lt | Gt | Le | Ge

(** Guard expressions (Section 3.2): boolean connectives over port
    truthiness and unsigned comparisons of atoms. *)
type guard =
  | True
  | Atom of atom  (** True iff the atom's value is non-zero. *)
  | Cmp of cmp_op * atom * atom
  | And of guard * guard
  | Or of guard * guard
  | Not of guard

type assignment = { dst : port_ref; src : atom; guard : guard }
(** [dst = guard ? src]. Assignments are non-blocking: all active
    assignments propagate within the same cycle. *)

type group = {
  group_name : string;
  group_attrs : Attrs.t;
  assigns : assignment list;
}

(** The control sub-language (Section 3.4). *)
type control =
  | Empty
  | Enable of string * Attrs.t  (** Pass control to a group. *)
  | Seq of control list * Attrs.t
  | Par of control list * Attrs.t
  | If of {
      cond_port : port_ref;
      cond_group : string option;
          (** The [with] group that computes the condition, if any. *)
      tbranch : control;
      fbranch : control;
      if_attrs : Attrs.t;
    }
  | While of {
      cond_port : port_ref;
      cond_group : string option;
      body : control;
      while_attrs : Attrs.t;
    }
  | Invoke of {
      cell : string;
      invoke_inputs : (string * atom) list;
          (** Input port of the invoked cell -> driven atom. *)
      invoke_outputs : (string * port_ref) list;
          (** Output port of the invoked cell -> destination port, wired
              for the duration of the invoke. *)
      invoke_attrs : Attrs.t;
    }

type component = {
  comp_name : string;
  inputs : port_def list;
  outputs : port_def list;
  cells : cell list;
  groups : group list;
  continuous : assignment list;  (** Assignments outside any group. *)
  control : control;
  comp_attrs : Attrs.t;
  is_extern : string option;
      (** [Some path] for [extern "path" { ... }] declarations: the component
          has a signature but no body (Section 6.2, black-box RTL). *)
}

type context = {
  components : component list;
  entrypoint : string;  (** Name of the top-level component (["main"]). *)
}

exception Ir_error of string

val ir_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Ir_error} with a formatted message. *)

(** {1 Lookup} *)

val find_component : context -> string -> component
val find_component_opt : context -> string -> component option
val entry : context -> component

val find_cell : component -> string -> cell
val find_cell_opt : component -> string -> cell option
val find_group : component -> string -> group
val find_group_opt : component -> string -> group option

val signature_ports : component -> port_def list
(** Inputs followed by outputs. *)

val update_component : context -> component -> context
(** Replace the component of the same name. *)

val add_component : context -> component -> context

(** {1 Widths}

    Width resolution needs the context (cells may instantiate user-defined
    components) and the enclosing component (for [This] ports). *)

val cell_port_width : context -> component -> string -> string -> int
(** [cell_port_width ctx comp cell port]: width of [cell.port]; raises
    {!Ir_error} for unknown cells or ports. *)

val port_ref_width : context -> component -> port_ref -> int
val atom_width : context -> component -> atom -> int

val cell_ports : context -> prototype -> (string * int * direction) list
(** All ports of a prototype as [(name, width, direction)]. *)

(** {1 Construction helpers} *)

val fresh_name : taken:(string -> bool) -> string -> string
(** [fresh_name ~taken base] returns [base] or [base0], [base1], … — the
    first candidate for which [taken] is false. *)

val fresh_cell_name : component -> string -> string
val fresh_group_name : component -> string -> string

val add_cell : component -> cell -> component
val add_cells : component -> cell list -> component
val add_group : component -> group -> component
val remove_group : component -> string -> component

(** {1 Traversal} *)

val guard_atoms : guard -> atom list
val assignment_atoms : assignment -> atom list
(** Source and guard atoms (not the destination). *)

val map_guard_atoms : (atom -> atom) -> guard -> guard
val map_assignment_ports : (port_ref -> port_ref) -> assignment -> assignment
(** Applies to the destination, the source, and all guard atoms. *)

val map_assignments : (assignment -> assignment) -> component -> component
(** Over all groups and the continuous assignments. *)

val all_assignments : component -> assignment list
(** Continuous assignments plus every group's assignments. *)

val map_control : (control -> control) -> control -> control
(** Bottom-up rewrite of every control node. *)

val iter_control : (control -> unit) -> control -> unit
(** Pre-order visit of every control node. *)

val iter_control_path : (string -> control -> unit) -> control -> unit
(** Like {!iter_control}, but hands each statement its path from the root
    (e.g. ["seq[1].par[0]"]; the root's path is [""]), for diagnostics
    that address a control statement. *)

val control_preorder : control -> (int * string * control) list
(** The canonical control-node numbering used for span attribution: every
    non-[Empty] statement in pre-order (children left to right; [If] visits
    the then branch before the else branch) as [(id, path, node)], ids
    counting from 0 and paths as in {!iter_control_path}. The simulator's
    control events ({!Calyx_sim.Sim.ctrl_event}) carry these ids. *)

val control_node_label : control -> string
(** A short human label for a control node: ["seq"], ["par"], ["if"],
    ["while"], ["enable g"], ["invoke c"]. *)

val enabled_groups : control -> string list
(** Names of groups enabled anywhere in a control program, including
    [with] condition groups; without duplicates, in first-visit order. *)

val control_size : control -> int
(** Number of control statements (for the Section 7.4 statistics): every
    node except [Empty] counts as one. *)

val rename_enables : (string -> string) -> control -> control
(** Rename group references (enables and [with] groups). *)

(** {1 Equality and printing (for diagnostics and tests)} *)

val equal_port_ref : port_ref -> port_ref -> bool
val compare_port_ref : port_ref -> port_ref -> int
val equal_atom : atom -> atom -> bool
val equal_guard : guard -> guard -> bool
val equal_assignment : assignment -> assignment -> bool

val pp_port_ref : Format.formatter -> port_ref -> unit
val pp_atom : Format.formatter -> atom -> unit
val pp_guard : Format.formatter -> guard -> unit

module Port_ref_set : Set.S with type elt = port_ref
module Port_ref_map : Map.S with type key = port_ref
module String_set : Set.S with type elt = string
module String_map : Map.S with type key = string

val simplify_guard : guard -> guard
(** Boolean simplification ([And (True, g)] = [g], double negation, …);
    [Not True] is the canonical false. *)

val guard_size : guard -> int
(** Number of operators and atoms in a guard (used by the area model). *)
