(** Standard pass pipelines (the command-line's [-p] aliases).

    The full compilation flow of the paper is
    {!optimize} (resource sharing, register sharing, latency inference)
    followed by {!lower} (GoInsertion, optional latency-sensitive
    compilation, CompileControl, RemoveGroups, cleanup). Every knob of the
    evaluation section maps to a flag here. *)

type config = {
  infer_latency : bool;  (** Section 5.3. *)
  resource_sharing : bool;  (** Section 5.1. *)
  register_sharing : bool;  (** Section 5.2. *)
  static_timing : bool;  (** Section 4.4, the Sensitive pass. *)
  lint : bool;
      (** Run {!Lint.check} before optimizing; error-severity lint
          diagnostics abort the compile ([--no-lint] turns this off). *)
}

val default_config : config
(** Everything on — the paper's "all optimizations" configuration. *)

val insensitive_config : config
(** Every optimization off: pure latency-insensitive compilation. Linting
    stays on. *)

val optimize : config -> Pass.t list
(** Starts with {!Compile_invoke} (always on), then the enabled
    optimizations. *)

val lower : config -> Pass.t list

val compile :
  ?config:config -> ?observe:(Pass.observation -> unit) -> Ir.context ->
  Ir.context
(** Run the whole pipeline; validates after every pass. [observe] receives
    one {!Pass.observation} per pass (see [Calyx_obs.Pass_stats] for a
    ready-made collector and renderers). *)

val passes : config -> Pass.t list
(** The passes {!compile} runs, in order. *)

val description : config -> string
(** The pass names {!compile} would run, joined with ["|"] — the readable
    form behind {!id}. *)

val id : config -> string
(** The pass-pipeline id: a stable 64-bit hash of {!description}, stamped
    into run manifests and intended as the cache-key component identifying
    which compiler configuration ran. *)
