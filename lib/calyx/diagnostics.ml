type severity = Error | Warning | Info

type location =
  | Program
  | Component of string
  | Cell of { comp : string; cell : string }
  | Group of { comp : string; group : string }
  | Assignment of { comp : string; group : string option; dst : string }
  | Control of { comp : string; path : string }

type t = {
  code : string;
  severity : severity;
  loc : location;
  message : string;
}

let diag severity ~code ~loc fmt =
  Format.kasprintf (fun message -> { code; severity; loc; message }) fmt

let error ~code ~loc fmt = diag Error ~code ~loc fmt
let warning ~code ~loc fmt = diag Warning ~code ~loc fmt

let is_error d = d.severity = Error
let errors_of ds = List.filter is_error ds
let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let location_component = function
  | Program -> ""
  | Component c
  | Cell { comp = c; _ }
  | Group { comp = c; _ }
  | Assignment { comp = c; _ }
  | Control { comp = c; _ } ->
      c

let compare a b =
  let by =
    [
      (fun () -> String.compare (location_component a.loc) (location_component b.loc));
      (fun () -> String.compare a.code b.code);
      (fun () -> String.compare a.message b.message);
    ]
  in
  List.fold_left (fun acc f -> if acc <> 0 then acc else f ()) 0 by

let pp_location fmt = function
  | Program -> Format.pp_print_string fmt "program"
  | Component c -> Format.pp_print_string fmt c
  | Cell { comp; cell } -> Format.fprintf fmt "%s/cell %s" comp cell
  | Group { comp; group } -> Format.fprintf fmt "%s/group %s" comp group
  | Assignment { comp; group = Some g; dst } ->
      Format.fprintf fmt "%s/group %s/%s" comp g dst
  | Assignment { comp; group = None; dst } ->
      Format.fprintf fmt "%s/continuous/%s" comp dst
  | Control { comp; path = "" } -> Format.fprintf fmt "%s/control" comp
  | Control { comp; path } -> Format.fprintf fmt "%s/control/%s" comp path

let pp fmt d =
  Format.fprintf fmt "%s %s [%a]: %s"
    (severity_string d.severity)
    d.code pp_location d.loc d.message

let render d = Format.asprintf "%a" pp d

let render_all ds =
  match ds with
  | [] -> ""
  | _ ->
      let sorted = List.stable_sort compare ds in
      let lines = List.map render sorted in
      let summary =
        Printf.sprintf "%d error(s), %d warning(s)" (count Error ds)
          (count Warning ds)
      in
      String.concat "\n" (lines @ [ summary ]) ^ "\n"

(* JSON emission via the shared combinators (the repo deliberately has no
   JSON dependency). *)

let json_str = Json.str
let json_obj = Json.obj

let location_json = function
  | Program -> json_obj [ ("kind", json_str "program") ]
  | Component c ->
      json_obj [ ("kind", json_str "component"); ("component", json_str c) ]
  | Cell { comp; cell } ->
      json_obj
        [
          ("kind", json_str "cell");
          ("component", json_str comp);
          ("cell", json_str cell);
        ]
  | Group { comp; group } ->
      json_obj
        [
          ("kind", json_str "group");
          ("component", json_str comp);
          ("group", json_str group);
        ]
  | Assignment { comp; group; dst } ->
      json_obj
        ([ ("kind", json_str "assignment"); ("component", json_str comp) ]
        @ (match group with
          | Some g -> [ ("group", json_str g) ]
          | None -> [])
        @ [ ("dst", json_str dst) ])
  | Control { comp; path } ->
      json_obj
        [
          ("kind", json_str "control");
          ("component", json_str comp);
          ("path", json_str path);
        ]

let to_json ds =
  let sorted = List.stable_sort compare ds in
  let one d =
    json_obj
      [
        ("code", json_str d.code);
        ("severity", json_str (severity_string d.severity));
        ("location", location_json d.loc);
        ("message", json_str d.message);
      ]
  in
  json_obj
    [
      ("diagnostics", Json.arr (List.map one sorted));
      ("errors", Json.int (count Error ds));
      ("warnings", Json.int (count Warning ds));
      ("infos", Json.int (count Info ds));
    ]

let code_descriptions =
  [
    ("CX001", "duplicate definition (cell, group, or signature port)");
    ("CX002", "unknown primitive or wrong primitive parameters");
    ("CX003", "unknown or recursive component instantiation");
    ("CX004", "unresolved port reference (cell, port, hole, or signature)");
    ("CX005", "direction violation (write to unwritable / read of unreadable)");
    ("CX006", "width mismatch in an assignment or guard comparison");
    ("CX007", "group does not drive its own done hole");
    ("CX008", "multiple unconditional drivers of a port within one group");
    ("CX009", "control references an unknown group");
    ("CX010", "invalid if/while condition (not 1-bit, unreadable, or unknown \
               condition group)");
    ("CX011", "invalid invoke (missing go/done interface or bad binding)");
    ("CX012", "entrypoint component not found");
    ("CX020", "par data race: parallel arms read/write the same state");
    ("CX021", "combinational cycle: the fixpoint evaluation cannot settle");
    ("CX022", "overlapping guarded drivers: guards not provably exclusive");
    ("CX023", "dead group: never reachable from the control program");
    ("CX024", "dead cell: never referenced by assignments or control");
    ("CX025", "latency contract violation: \"static\" attribute disagrees \
               with the derived latency");
  ]

let describe code =
  List.find_map
    (fun (c, d) -> if String.equal c code then Some d else None)
    code_descriptions
