(** Latency inference (Section 5.3).

    Conservatively infers ["static"] attributes for groups and components so
    the {!Static_timing} pass can apply even when the frontend supplied no
    annotations (the systolic array generator relies on this entirely).

    Group rules, in the paper's "simple groups" spirit:
    - a group whose done is a constant 1 takes one cycle;
    - a group whose done is a register's or memory's [done], with an
      unconditional [write_en = 1], takes one cycle;
    - a group whose done is a go/done cell's [done] and that drives the
      cell's [go] takes the cell's latency (the paper's example rule);
    - a group that stores a go/done cell's result into a register on the
      cell's done ([r.write_en = c.done], [g[done] = r.done]) takes the
      cell's latency plus one.

    Component rule: when every group is static and the control program's
    shape is statically timeable, the component receives a ["static"]
    attribute equal to {!Static_timing.control_latency}, letting invoking
    groups in parent components infer their latency in turn. The pass
    iterates over the program to a fixpoint so latencies flow bottom-up
    through the component hierarchy. *)

val pass : Pass.t

val derived_group_latency :
  Ir.context -> Ir.component -> Ir.group -> int option
(** The latency the group rules above derive, {e ignoring} any existing
    ["static"] annotation — what the inferred hardware will actually take.
    The latency-contract lint compares this against the annotation. *)
