open Ir
open Builder

type operand = O_reg of int | O_const of int
type source = S_const of int | S_reg of int | S_sum of operand * int

type spec =
  | Act of source
  | Seqs of spec list
  | Pars of spec list
  | Ifs of { lhs : int; rhs : int; t : spec; f : spec option }
  | Whiles of int * spec

let width = 8

(* ------------------------------------------------------------------ *)
(* Generation: draw a spec with the same shape distribution as the
   original inline fuzzer (control depth 3, actions twice as likely as
   any compound form). Children are drawn left-to-right explicitly so
   the seed -> spec mapping does not depend on stdlib evaluation
   order. *)

let gen_source st =
  match Random.State.int st 3 with
  | 0 -> S_const (Random.State.int st 200)
  | 1 -> S_reg (Random.State.int st 1000)
  | _ ->
      let a =
        if Random.State.bool st then O_reg (Random.State.int st 1000)
        else O_const (Random.State.int st 100)
      in
      S_sum (a, 1 + Random.State.int st 50)

let rec gen_ctrl st depth =
  let choice = if depth = 0 then 0 else Random.State.int st 10 in
  match choice with
  | 0 | 1 | 2 | 3 -> Act (gen_source st)
  | 4 | 5 ->
      let k = 1 + Random.State.int st 3 in
      let rec go i acc =
        if i = k then Seqs (List.rev acc)
        else go (i + 1) (gen_ctrl st (depth - 1) :: acc)
      in
      go 0 []
  | 6 | 7 ->
      let k = 1 + Random.State.int st 3 in
      let rec go i acc =
        if i = k then Pars (List.rev acc)
        else go (i + 1) (gen_ctrl st (depth - 1) :: acc)
      in
      go 0 []
  | 8 ->
      let lhs = Random.State.int st 1000 in
      let rhs = Random.State.int st 120 in
      let t = gen_ctrl st (depth - 1) in
      let f =
        if Random.State.bool st then Some (gen_ctrl st (depth - 1)) else None
      in
      Ifs { lhs; rhs; t; f }
  | _ -> Whiles (1 + Random.State.int st 4, gen_ctrl st (depth - 1))

let generate st = gen_ctrl st 3

(* ------------------------------------------------------------------ *)
(* Building. Register references are indices resolved modulo the [safe]
   set (registers whose writer has definitely completed before this
   subtree runs), so every spec — including every shrink candidate —
   materializes to a race-free program. *)

type b = {
  mutable cells : cell list;
  mutable groups : group list;
  mutable reg_count : int;
  mutable group_count : int;
  mutable cell_count : int;
}

let fresh_reg b =
  let name = Printf.sprintf "r%d" b.reg_count in
  b.reg_count <- b.reg_count + 1;
  b.cells <- reg name width :: b.cells;
  name

let fresh_cell b prim_name params =
  let name = Printf.sprintf "c%d" b.cell_count in
  b.cell_count <- b.cell_count + 1;
  b.cells <- prim name prim_name params :: b.cells;
  name

let fresh_group b base assigns =
  let name = Printf.sprintf "%s%d" base b.group_count in
  b.group_count <- b.group_count + 1;
  let assigns = assigns name in
  b.groups <- group name assigns :: b.groups;
  name

let resolve safe i =
  match safe with
  | [] -> None
  | _ -> Some (List.nth safe (i mod List.length safe))

let build_source b safe src =
  match src with
  | S_const c -> (lit ~width (c mod 200), [])
  | S_reg i -> (
      match resolve safe i with
      | Some r -> (pa r "out", [])
      | None -> (lit ~width (i mod 200), []))
  | S_sum (a, addend) ->
      let adder = fresh_cell b "std_add" [ width ] in
      let a =
        match a with
        | O_const c -> lit ~width (c mod 100)
        | O_reg i -> (
            match resolve safe i with
            | Some r -> pa r "out"
            | None -> lit ~width (i mod 100))
      in
      let bnd = lit ~width (1 + (addend mod 50)) in
      ( pa adder "out",
        [ assign (port adder "left") a; assign (port adder "right") bnd ] )

let build_action b safe src =
  let target = fresh_reg b in
  let atom, extra = build_source b safe src in
  let name =
    fresh_group b "act" (fun name ->
        extra
        @ [
            assign (port target "in") atom;
            assign (port target "write_en") (bit true);
            assign (hole name "done") (pa target "done");
          ])
  in
  (target, name)

let build_cond b safe lhs_idx rhs =
  let cmp = fresh_cell b "std_lt" [ width ] in
  let lhs =
    match resolve safe lhs_idx with
    | Some r -> pa r "out"
    | None -> lit ~width 0
  in
  let name =
    fresh_group b "cnd" (fun name ->
        [
          assign (port cmp "left") lhs;
          assign (port cmp "right") (lit ~width (rhs mod 120));
          assign (hole name "done") (bit true);
        ])
  in
  (name, Cell_port (cmp, "out"))

let rec build_ctrl b safe spec =
  match spec with
  | Act src ->
      let target, name = build_action b safe src in
      (enable name, [ target ])
  | Seqs cs ->
      let rec go safe written = function
        | [] -> ([], written)
        | c :: rest ->
            let ctrl, w = build_ctrl b safe c in
            let rest, written' = go (safe @ w) (written @ w) rest in
            (ctrl :: rest, written')
      in
      let cs, written = go safe [] cs in
      (seq cs, written)
  | Pars cs ->
      let children = List.map (build_ctrl b safe) cs in
      (par (List.map fst children), List.concat_map snd children)
  | Ifs { lhs; rhs; t; f } ->
      let cond, p = build_cond b safe lhs rhs in
      let tc, wt = build_ctrl b safe t in
      let fc, wf =
        match f with
        | Some f -> build_ctrl b safe f
        | None -> (Empty, [])
      in
      (if_ ~cond p tc fc, wt @ wf)
  | Whiles (bound, body) ->
      let counter = fresh_reg b in
      let adder = fresh_cell b "std_add" [ width ] in
      let incr =
        fresh_group b "inc" (fun name ->
            [
              assign (port adder "left") (pa counter "out");
              assign (port adder "right") (lit ~width 1);
              assign (port counter "in") (pa adder "out");
              assign (port counter "write_en") (bit true);
              assign (hole name "done") (pa counter "done");
            ])
      in
      let cmp = fresh_cell b "std_lt" [ width ] in
      let cond =
        fresh_group b "cnd" (fun name ->
            [
              assign (port cmp "left") (pa counter "out");
              assign (port cmp "right") (lit ~width bound);
              assign (hole name "done") (bit true);
            ])
      in
      let bc, wb = build_ctrl b (counter :: safe) body in
      ( while_ ~cond (Cell_port (cmp, "out")) (seq [ bc; enable incr ]),
        counter :: wb )

let generated =
  Calyx_telemetry.Metrics.counter
    ~help:"Random programs built by the fuzz generator"
    "calyx_fuzz_programs_total"

let build spec =
  Calyx_telemetry.Metrics.inc generated;
  let b =
    { cells = []; groups = []; reg_count = 0; group_count = 0; cell_count = 0 }
  in
  let control, _ = build_ctrl b [] spec in
  let main =
    component "main"
    |> with_cells (List.rev b.cells)
    |> with_groups (List.rev b.groups)
    |> with_control control
  in
  context [ main ]

let spec_of_seed seed = generate (Random.State.make [| seed |])
let program_of_seed seed = build (spec_of_seed seed)

(* ------------------------------------------------------------------ *)
(* Shrinking. Every candidate is strictly smaller under [size], which
   counts spec nodes plus while bounds plus non-trivial sources, so a
   greedy shrink loop terminates. *)

let rec size = function
  | Act (S_const _) -> 1
  | Act _ -> 2
  | Seqs cs | Pars cs -> List.fold_left (fun n c -> n + size c) 1 cs
  | Ifs { t; f; _ } ->
      1 + size t + (match f with Some f -> size f | None -> 0)
  | Whiles (bound, body) -> 1 + bound + size body

let remove_at i xs = List.filteri (fun j _ -> j <> i) xs

let subst_at i x' xs = List.mapi (fun j x -> if j = i then x' else x) xs

let rec shrink spec =
  match spec with
  | Act (S_const _) -> []
  | Act _ -> [ Act (S_const 1) ]
  | Seqs [ c ] -> (c :: shrink c) @ List.map (fun c' -> Seqs [ c' ]) (shrink c)
  | Seqs cs -> shrink_list (fun cs -> Seqs cs) cs
  | Pars [ c ] -> (c :: shrink c) @ List.map (fun c' -> Pars [ c' ]) (shrink c)
  | Pars cs -> shrink_list (fun cs -> Pars cs) cs
  | Ifs { lhs; rhs; t; f } ->
      (t :: (match f with Some f -> [ f ] | None -> []))
      @ (match f with
        | Some _ -> [ Ifs { lhs; rhs; t; f = None } ]
        | None -> [])
      @ List.map (fun t' -> Ifs { lhs; rhs; t = t'; f }) (shrink t)
      @ (match f with
        | Some fc ->
            List.map (fun f' -> Ifs { lhs; rhs; t; f = Some f' }) (shrink fc)
        | None -> [])
  | Whiles (bound, body) ->
      (body :: (if bound > 1 then [ Whiles (bound - 1, body) ] else []))
      @ List.map (fun b' -> Whiles (bound, b')) (shrink body)

and shrink_list rebuild cs =
  let n = List.length cs in
  cs
  @ List.concat
      (List.init n (fun i -> [ rebuild (remove_at i cs) ]))
  @ List.concat
      (List.mapi
         (fun i c -> List.map (fun c' -> rebuild (subst_at i c' cs)) (shrink c))
         cs)

(* ------------------------------------------------------------------ *)

let rec to_string spec =
  match spec with
  | Act (S_const c) -> Printf.sprintf "(act %d)" c
  | Act (S_reg i) -> Printf.sprintf "(act r%d)" i
  | Act (S_sum (O_reg i, b)) -> Printf.sprintf "(act (+ r%d %d))" i b
  | Act (S_sum (O_const c, b)) -> Printf.sprintf "(act (+ %d %d))" c b
  | Seqs cs ->
      Printf.sprintf "(seq %s)" (String.concat " " (List.map to_string cs))
  | Pars cs ->
      Printf.sprintf "(par %s)" (String.concat " " (List.map to_string cs))
  | Ifs { lhs; rhs; t; f } ->
      Printf.sprintf "(if (< r%d %d) %s%s)" lhs rhs (to_string t)
        (match f with Some f -> " " ^ to_string f | None -> "")
  | Whiles (bound, body) ->
      Printf.sprintf "(while %d %s)" bound (to_string body)
