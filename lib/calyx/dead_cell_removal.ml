open Ir

let remove_dead (_ctx : context) comp =
  let used = Hashtbl.create 32 in
  let mark = function
    | Cell_port (c, _) -> Hashtbl.replace used c ()
    | Hole _ | This _ -> ()
  in
  let mark_atom = function Port p -> mark p | Lit _ -> () in
  List.iter
    (fun a ->
      mark a.dst;
      List.iter mark_atom (assignment_atoms a))
    (all_assignments comp);
  iter_control
    (function
      | If { cond_port; _ } | While { cond_port; _ } -> mark cond_port
      | Invoke { cell; invoke_inputs; invoke_outputs; _ } ->
          Hashtbl.replace used cell ();
          List.iter (fun (_, a) -> mark_atom a) invoke_inputs;
          List.iter (fun (_, dst) -> mark dst) invoke_outputs
      | Empty | Enable _ | Seq _ | Par _ -> ())
    comp.control;
  {
    comp with
    cells =
      List.filter
        (fun c -> Hashtbl.mem used c.cell_name || Attrs.external_mem c.cell_attrs)
        comp.cells;
  }

let pass =
  Pass.make ~name:"dead-cell-removal"
    ~description:"drop cells whose ports are never referenced"
    (Pass.per_component remove_dead)
