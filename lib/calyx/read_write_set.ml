open Ir
module SS = String_set

let registers comp =
  List.fold_left
    (fun acc c ->
      match c.cell_proto with
      | Prim ("std_reg", _) -> SS.add c.cell_name acc
      | _ -> acc)
    SS.empty comp.cells

let reads comp group =
  let regs = registers comp in
  List.fold_left
    (fun acc a ->
      List.fold_left
        (fun acc atom ->
          match atom with
          | Port (Cell_port (c, "out")) when SS.mem c regs -> SS.add c acc
          | _ -> acc)
        acc (assignment_atoms a))
    SS.empty group.assigns

let may_writes comp group =
  let regs = registers comp in
  List.fold_left
    (fun acc a ->
      match a.dst with
      | Cell_port (c, ("in" | "write_en")) when SS.mem c regs -> SS.add c acc
      | _ -> acc)
    SS.empty group.assigns

(* Cell-granularity sets for the par data-race lint: unlike the
   register-only sets above, these cover every cell (memories, pipelined
   units, sub-components, combinational operators). *)

let cell_reads group =
  List.fold_left
    (fun acc a ->
      List.fold_left
        (fun acc atom ->
          match atom with
          | Port (Cell_port (c, _)) -> SS.add c acc
          | _ -> acc)
        acc (assignment_atoms a))
    SS.empty group.assigns

let cell_writes group =
  List.fold_left
    (fun acc a ->
      match a.dst with Cell_port (c, _) -> SS.add c acc | _ -> acc)
    SS.empty group.assigns

let must_writes comp group =
  let regs = registers comp in
  List.fold_left
    (fun acc a ->
      match (a.dst, a.guard, a.src) with
      | Cell_port (c, "write_en"), True, Lit v
        when SS.mem c regs && Bitvec.is_true v ->
          SS.add c acc
      | _ -> acc)
    SS.empty group.assigns
