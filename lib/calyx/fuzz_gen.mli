(** Random well-formed, race-free, terminating Calyx programs, as a
    shrinkable generator.

    Programs are described by a {!spec} — a small control-shape term — and
    materialized by {!build}. Every register reference in a spec is an
    abstract index resolved modulo the set of registers legally readable at
    that point (registers whose writer has definitely completed), so {e
    every} spec builds a well-formed program: shrinking can drop or
    simplify any subterm and the result still compiles, runs, and
    terminates. This is what lets differential failures (sim-vs-sim and
    sim-vs-RTL) be reported as minimized counterexample programs.

    Construction invariants (the same as the original fuzzer's, see
    test_random.ml): each action writes a {e fresh} register, so every
    register has exactly one writer group and [par] arms never race;
    conditions read only completed registers; [while] loops count a private
    counter up to a small bound, so all programs terminate. *)

type operand = O_reg of int | O_const of int

type source =
  | S_const of int  (** A literal. *)
  | S_reg of int  (** A readable register (index mod availability). *)
  | S_sum of operand * int  (** operand + literal, through an adder. *)

type spec =
  | Act of source  (** One group writing a fresh register. *)
  | Seqs of spec list
  | Pars of spec list
  | Ifs of { lhs : int; rhs : int; t : spec; f : spec option }
      (** if (readable[lhs] < rhs). *)
  | Whiles of int * spec  (** Loop a private counter up to the bound. *)

val width : int
(** Bit width of every generated register and operator (8). *)

val generate : Random.State.t -> spec
(** Draw a random spec (control depth up to 3, like the original
    generator). *)

val build : spec -> Ir.context
(** Materialize the program. Deterministic in the spec. *)

val program_of_seed : int -> Ir.context
(** [build (generate (Random.State.make [| seed |]))] — the one-call
    interface used by fixed-seed sweeps and the CLI fuzzer. *)

val spec_of_seed : int -> spec

val shrink : spec -> spec list
(** Strictly smaller candidate specs, most aggressive first: whole
    subtrees, then one-child drops, then in-place child shrinks. All
    candidates build well-formed programs. *)

val size : spec -> int
(** Number of spec nodes (the measure {!shrink} decreases). *)

val to_string : spec -> string
(** A compact s-expression rendering for failure messages. *)
