(** A worker pool over OCaml 5 domains: the farm's scheduler.

    One shared queue (an atomic next-index over the input array — the
    simplest correct work distribution for jobs this coarse), [jobs]
    workers including the calling domain, results returned in input
    order regardless of completion order. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size used when the
    caller does not pass [--jobs]. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item, [jobs] at a time, and
    returns the results in the order of [items]. [jobs <= 1] degrades to
    a plain sequential [List.map] on the calling domain (no domains are
    spawned), which is the reference behaviour the determinism suite
    compares parallel runs against.

    If [f] raises, remaining unstarted items are abandoned and the first
    exception (in completion order) is re-raised on the calling domain
    after all workers have joined. Callers that need per-item failures
    should catch inside [f]. *)
