(* Work distribution for the farm: an atomic claim index over the input
   array. Jobs are whole compile→sim→validate pipelines (milliseconds to
   seconds each), so claim overhead is irrelevant and a deque buys
   nothing; what matters is that results land at their input index, so
   the output order — and therefore every downstream rendering — is
   independent of scheduling. *)

let default_jobs () = Domain.recommended_domain_count ()

let map ~jobs f items =
  match items with
  | [] -> []
  | _ when jobs <= 1 -> List.map f items
  | _ ->
      let inputs = Array.of_list items in
      let n = Array.length inputs in
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      let worker () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n || Atomic.get failure <> None then continue := false
          else
            match f inputs.(i) with
            | v -> results.(i) <- Some v
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                ignore
                  (Atomic.compare_and_set failure None (Some (e, bt)))
        done
      in
      let domains =
        List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
      in
      (* The calling domain is the last worker: [--jobs N] means N
         domains computing, not N+1. *)
      worker ();
      List.iter Domain.join domains;
      (match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list (Array.map Option.get results)
